"""Broadcast channel models.

The paper assumes a local broadcast medium close to IEEE 802.11: one-message
channels, fair sending/reception, possible losses, and a fair-channel
hypothesis (τ1, τ2) guaranteeing that a persistent sender is eventually heard.
The channel model decides, per (sender, receiver) pair and per transmission,
whether and when the message is delivered.

:class:`LossyChannel` applies an independent loss probability per receiver and
a delivery delay.  :class:`CollisionChannel` additionally drops receptions when
two transmissions overlap at the receiver within a configurable collision
window, modelling the "at most one message on the channel" hypothesis.

Batched decisions
-----------------
:meth:`ChannelModel.decide_batch` decides a whole receiver batch in one call —
the hot path of every broadcast.  The scalar loop is the semantic *reference*:
any batched implementation must produce the same delivered set, the same
delays and leave the RNG in the same state as ``[self.decide(sender, r, time)
for r in receivers]``.  The stock vectorized paths exploit that a numpy
``Generator`` fills ``rng.random(n)`` / ``rng.uniform(lo, hi, n)`` from the
exact bit stream ``n`` scalar draws would consume, so seeded runs replay
bit-identically with the fast path on or off (regression-tested in
``tests/test_channel_batch.py``).  The one configuration whose scalar loop
*interleaves* two draw kinds per receiver (``loss_probability > 0`` together
with a non-degenerate delay interval) cannot be expressed as array draws and
falls back to the scalar loop — batching still amortizes the call overhead of
the network layer around it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["ChannelDecision", "BatchDecisions", "ChannelModel", "PerfectChannel",
           "LossyChannel", "CollisionChannel"]


@dataclass(frozen=True)
class ChannelDecision:
    """Outcome of a transmission attempt towards one receiver."""

    delivered: bool
    delay: float = 0.0
    reason: str = "ok"


class BatchDecisions:
    """Outcome of one transmission towards a whole receiver batch.

    ``delivered[i]`` / ``delays[i]`` mirror the :class:`ChannelDecision` the
    scalar loop would have produced for ``receivers[i]`` (dropped entries
    carry delay ``0.0``).  ``reasons`` is ``None`` whenever every entry
    follows the default pattern — ``"ok"`` for delivered, ``"loss"`` for
    dropped — so the common lossy batch never materializes a reason list;
    channels with other reasons (collisions) provide one string per
    receiver.  Consumers needing trace-exact reasons substitute the default
    pattern when ``reasons`` is ``None``.

    Two optional hints let array-native consumers skip the per-entry python
    loop; both are conservative (their defaults merely decline the fast
    path, never change semantics): ``zero_delay`` is ``True`` only when
    every delay is ``0.0``, and ``delivered_array`` — when not ``None`` —
    is the boolean numpy mask the ``delivered`` list was materialized from,
    ready for a masked gather over a parallel receiver array.

    A plain ``__slots__`` class, not a dataclass: one instance is built per
    broadcast, and frozen-dataclass construction alone costs more than the
    RNG draw it wraps.
    """

    __slots__ = ("delivered", "delays", "reasons", "zero_delay",
                 "delivered_array", "n_accepted")

    def __init__(self, delivered: Sequence[bool], delays: Sequence[float],
                 reasons: Optional[List[str]] = None, zero_delay: bool = False,
                 delivered_array: Optional[np.ndarray] = None,
                 n_accepted: Optional[int] = None):
        self.delivered = delivered
        self.delays = delays
        self.reasons = reasons
        self.zero_delay = zero_delay
        self.delivered_array = delivered_array
        #: accepted count, filled in by constructors that already know it
        #: (every stock channel does) so consumers skip the re-count.
        self.n_accepted = n_accepted

    def accepted(self) -> int:
        """Number of delivered receivers."""
        if self.n_accepted is None:
            self.n_accepted = sum(self.delivered)
        return self.n_accepted

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (f"BatchDecisions(accepted={self.accepted()}/"
                f"{len(self.delivered)}, zero_delay={self.zero_delay})")


class ChannelModel:
    """Interface: decide delivery of one transmission towards one receiver."""

    def decide(self, sender: Hashable, receiver: Hashable, time: float) -> ChannelDecision:
        """Return the delivery decision for a transmission emitted at ``time``."""
        raise NotImplementedError

    def decide_batch(self, sender: Hashable, receivers: Sequence[Hashable],
                     time: float) -> BatchDecisions:
        """Decide one transmission towards every receiver of a batch.

        Reference semantics (and the default implementation): the scalar
        :meth:`decide` loop over ``receivers`` in order.  Overrides must keep
        the delivered set, the delays *and* the RNG consumption identical to
        that loop, so a seeded run replays bit-exactly whichever path the
        network takes.
        """
        delivered: List[bool] = []
        delays: List[float] = []
        reasons: List[str] = []
        drops = 0
        for receiver in receivers:
            decision = self.decide(sender, receiver, time)
            delivered.append(decision.delivered)
            delays.append(decision.delay)
            reasons.append(decision.reason)
            drops += not decision.delivered
        return BatchDecisions(delivered=delivered, delays=delays,
                              reasons=reasons if drops else None,
                              n_accepted=len(delivered) - drops)

    def decide_batch_fast(self, sender: Hashable, receivers: Sequence[Hashable],
                          time: float) -> Optional[Tuple[Optional[np.ndarray], int]]:
        """All-zero-delay batch decision without the :class:`BatchDecisions` box.

        The network's hottest dispatch loop (no trace, no delays) probes this
        first.  A channel may answer ``(mask, accepted)`` — ``mask`` a boolean
        numpy array over ``receivers`` (or ``None`` for "all delivered"),
        ``accepted`` its true count — **only** when every delay the scalar
        loop would produce is ``0.0`` and the RNG consumption and drop/deliver
        counters advance exactly as :meth:`decide_batch` would.  Returning
        ``None`` declines: the caller then invokes :meth:`decide_batch`, so a
        declining implementation must not have consumed any randomness.  The
        default declines for every channel that does not opt in.
        """
        return None


class PerfectChannel(ChannelModel):
    """Every transmission is delivered with a constant (possibly zero) delay."""

    def __init__(self, delay: float = 0.0):
        if delay < 0:
            raise ValueError("delay must be non-negative")
        # The decision is identical for every transmission; sharing one frozen
        # instance keeps the per-receiver broadcast cost allocation-free.
        self._decision = ChannelDecision(delivered=True, delay=float(delay))
        # Subclass-override check hoisted out of the per-broadcast hot path;
        # type(self) is settled by construction time.
        self._vector_ok = type(self).decide is PerfectChannel.decide

    @property
    def delay(self) -> float:
        """Constant delivery delay."""
        return self._decision.delay

    def decide(self, sender, receiver, time) -> ChannelDecision:
        return self._decision

    def decide_batch(self, sender, receivers, time) -> BatchDecisions:
        if not self._vector_ok:
            # A subclass overriding only decide() gets the scalar reference
            # loop, keeping the batched and per-receiver paths bit-identical.
            return super().decide_batch(sender, receivers, time)
        n = len(receivers)
        delay = self._decision.delay
        return BatchDecisions(delivered=[True] * n, delays=[delay] * n,
                              zero_delay=delay == 0.0, n_accepted=n)

    def decide_batch_fast(self, sender, receivers, time):
        if not self._vector_ok or self._decision.delay != 0.0:
            return None
        return None, len(receivers)


class LossyChannel(ChannelModel):
    """Independent per-receiver loss with uniform random delay.

    Parameters
    ----------
    loss_probability:
        Probability that a given receiver misses a given transmission.
    min_delay, max_delay:
        Uniform delivery delay bounds.
    rng:
        Random generator (injected by the network for reproducibility).
    """

    def __init__(self, loss_probability: float = 0.0, min_delay: float = 0.0,
                 max_delay: float = 0.0, rng: Optional[np.random.Generator] = None):
        if not 0.0 <= loss_probability <= 1.0:
            raise ValueError("loss_probability must be in [0, 1]")
        if min_delay < 0 or max_delay < min_delay:
            raise ValueError("need 0 <= min_delay <= max_delay")
        self.loss_probability = float(loss_probability)
        self.min_delay = float(min_delay)
        self.max_delay = float(max_delay)
        self._rng = rng if rng is not None else np.random.default_rng()
        self.dropped = 0
        self.delivered = 0
        # Subclass-override check hoisted out of the per-broadcast hot path:
        # the vectorized core hardcodes the stock draw pattern, so any class
        # overriding a scalar hook must take the scalar reference loop.
        # CollisionChannel re-derives the flag against its own decide.
        self._vector_ok = (type(self).decide is LossyChannel.decide
                           and type(self)._draw_delay is LossyChannel._draw_delay)

    def set_rng(self, rng: np.random.Generator) -> None:
        """Inject the random stream used for loss and delay draws."""
        self._rng = rng

    def _draw_delay(self) -> float:
        if self.max_delay == self.min_delay:
            return self.min_delay
        return float(self._rng.uniform(self.min_delay, self.max_delay))

    def decide(self, sender, receiver, time) -> ChannelDecision:
        if self.loss_probability > 0 and self._rng.random() < self.loss_probability:
            self.dropped += 1
            return ChannelDecision(delivered=False, reason="loss")
        self.delivered += 1
        return ChannelDecision(delivered=True, delay=self._draw_delay())

    def _lossy_batch(self, n: int) -> Optional[BatchDecisions]:
        """Vectorized loss/delay core for ``n`` receivers, or ``None``.

        Returns ``None`` in the one configuration (``loss_probability > 0``
        with a non-degenerate delay interval) whose scalar reference
        interleaves a ``random()`` and a ``uniform()`` draw per receiver —
        array draws cannot reproduce that stream.  Every other configuration
        consumes at most one draw *kind*, so one array draw is bit-identical
        to the scalar loop.  Updates the delivered/dropped counters exactly as
        ``n`` scalar calls would.
        """
        p = self.loss_probability
        variable_delay = self.max_delay != self.min_delay
        if p > 0 and variable_delay:
            return None
        if n == 0:
            return BatchDecisions(delivered=[], delays=[], zero_delay=True,
                                  n_accepted=0)
        if p <= 0:
            self.delivered += n
            if variable_delay:
                delays = self._rng.uniform(self.min_delay, self.max_delay, n).tolist()
            else:
                delays = [self.min_delay] * n
            return BatchDecisions(delivered=[True] * n, delays=delays,
                                  zero_delay=not variable_delay
                                  and self.min_delay == 0.0, n_accepted=n)
        mask = self._rng.random(n) >= p
        delivered = mask.tolist()
        accepted = sum(delivered)
        self.delivered += accepted
        self.dropped += n - accepted
        constant = self.min_delay
        if constant == 0.0:
            delays = [0.0] * n
        else:
            delays = [constant if kept else 0.0 for kept in delivered]
        # reasons=None: loss drops are exactly the default "ok"/"loss" pattern.
        return BatchDecisions(delivered=delivered, delays=delays,
                              zero_delay=constant == 0.0, delivered_array=mask,
                              n_accepted=accepted)

    def decide_batch(self, sender, receivers, time) -> BatchDecisions:
        # A subclass overriding any scalar hook (decide or _draw_delay) must
        # stay the single source of truth on both pipelines — _vector_ok,
        # settled at construction, falls back to the scalar reference loop.
        if not self._vector_ok:
            return super().decide_batch(sender, receivers, time)
        batch = self._lossy_batch(len(receivers))
        if batch is None:
            return super().decide_batch(sender, receivers, time)
        return batch

    def decide_batch_fast(self, sender, receivers, time):
        # Only the all-zero-delay configurations qualify; everything else
        # declines *before* touching the RNG so decide_batch can take over.
        if (not self._vector_ok or self.min_delay != 0.0
                or self.max_delay != 0.0):
            return None
        n = len(receivers)
        p = self.loss_probability
        if p <= 0:
            self.delivered += n
            return None, n
        if n == 0:
            return None, 0
        mask = self._rng.random(n) >= p
        accepted = int(np.count_nonzero(mask))
        self.delivered += accepted
        self.dropped += n - accepted
        return mask, accepted


class CollisionChannel(LossyChannel):
    """Lossy channel with receiver-side collisions.

    If two different senders transmit towards the same receiver within
    ``collision_window`` time units, the later transmission is dropped (and the
    earlier one is unaffected — a simplified capture model).  This realizes the
    paper's hypothesis (i)/(iv): a node cannot receive while another node in
    its vicinity is transmitting.
    """

    def __init__(self, collision_window: float, loss_probability: float = 0.0,
                 min_delay: float = 0.0, max_delay: float = 0.0,
                 rng: Optional[np.random.Generator] = None):
        super().__init__(loss_probability, min_delay, max_delay, rng)
        if collision_window < 0:
            raise ValueError("collision_window must be non-negative")
        self.collision_window = float(collision_window)
        self.collisions = 0
        # receiver -> (sender, time of the last transmission heard)
        self._last_heard: Dict[Hashable, Tuple[Hashable, float]] = {}
        self._vector_ok = (type(self).decide is CollisionChannel.decide
                           and type(self)._draw_delay is LossyChannel._draw_delay)

    def decide(self, sender, receiver, time) -> ChannelDecision:
        last = self._last_heard.get(receiver)
        if (last is not None and last[0] != sender
                and (time - last[1]) < self.collision_window):
            self.collisions += 1
            self._last_heard[receiver] = (sender, time)
            return ChannelDecision(delivered=False, reason="collision")
        self._last_heard[receiver] = (sender, time)
        return super().decide(sender, receiver, time)

    def decide_batch(self, sender, receivers, time) -> BatchDecisions:
        # The interleaved-draw configuration — and any subclass overriding a
        # scalar hook (decide or _draw_delay) — must take the scalar
        # reference loop *before* any collision state is touched:
        # re-deciding a receiver after its ``_last_heard`` update would no
        # longer collide.
        if (not self._vector_ok
                or (self.loss_probability > 0 and self.max_delay != self.min_delay)):
            return ChannelModel.decide_batch(self, sender, receivers, time)
        n = len(receivers)
        collided = [False] * n
        last_heard, window = self._last_heard, self.collision_window
        for i, receiver in enumerate(receivers):
            last = last_heard.get(receiver)
            if last is not None and last[0] != sender and (time - last[1]) < window:
                self.collisions += 1
                collided[i] = True
            last_heard[receiver] = (sender, time)
        survivors = n - sum(collided)
        # Collision checks draw no randomness, so the lossy core consumes the
        # RNG exactly as the scalar loop does: once per surviving receiver,
        # in order.
        sub = self._lossy_batch(survivors)
        if survivors == n:
            return sub
        delivered: List[bool] = [False] * n
        delays: List[float] = [0.0] * n
        reasons: List[str] = ["collision"] * n
        j = 0
        for i in range(n):
            if collided[i]:
                continue
            delivered[i] = sub.delivered[j]
            delays[i] = sub.delays[j]
            reasons[i] = (sub.reasons[j] if sub.reasons is not None
                          else ("ok" if sub.delivered[j] else "loss"))
            j += 1
        return BatchDecisions(delivered=delivered, delays=delays, reasons=reasons,
                              n_accepted=sub.accepted())

    def decide_batch_fast(self, sender, receivers, time):
        # Collision bookkeeping (the _last_heard table) lives in decide_batch;
        # declining keeps that single implementation authoritative.  No state
        # is touched here, as the fast-hook contract requires.
        return None
