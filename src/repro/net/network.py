"""The wireless network: nodes, positions, broadcast delivery, churn.

:class:`Network` glues together the simulator, a radio model (who can hear
whom), a channel model (losses, delays, collisions), a mobility model (how
positions evolve) and the protocol processes attached to each node.

A broadcast from node ``u`` is delivered to every *active* node ``v`` such that
``u`` is in the vicinity of ``v`` at emission time, unless the channel decides
to drop it.  Delivery happens after the channel delay, through the process
:meth:`repro.sim.process.Process.deliver` hook.

Neighbour engine
----------------
When the radio reports a finite :meth:`~repro.net.radio.RadioModel.max_range`,
the network serves vicinity and topology queries from a
:class:`~repro.net.spatialindex.UniformGridIndex` over the node positions
instead of scanning every process, making broadcasts and snapshots cost
O(local density) instead of O(N).  Topology snapshots are additionally cached
behind a *generation stamp*: every position change (``set_position``, mobility
steps), membership change (``add_node`` / ``remove_node``) and activation
change bumps the generation, and a snapshot is rebuilt only when its stamp is
stale.  Stock radios notify the network of in-place parameter mutations
(their setters call :meth:`~repro.net.radio.RadioModel.notify_mutation`);
custom radios mutated through private state must be followed by an explicit
:meth:`Network.invalidate_topology`.  Radios with unbounded range
(``max_range() is None``) keep the original brute-force scan, still behind the
same snapshot cache.

Vectorized delivery pipeline
----------------------------
On top of the grid, the network maintains an incremental
:class:`~repro.net.linkstate.LinkStateCache`: the directed edge set
``u -> v iff link_exists(u, v)`` is patched per delta (only the links of
moved / added / removed nodes are re-tested), so topology refreshes under
mobility no longer rescan candidate pairs.  Broadcasts from radios whose
vicinity test is deterministic
(:meth:`~repro.net.radio.RadioModel.deterministic_vicinity`) take a batched
fast path: the receiver list is served from the sender's cached out-links
(zero distance tests), the channel decides the whole batch in one
:meth:`~repro.net.channel.ChannelModel.decide_batch` call (vectorized RNG
draws consuming the identical stream as the scalar loop), and purely-delayed
batches are bulk-inserted through
:meth:`~repro.sim.engine.Simulator.schedule_many`.  ``vectorized_delivery=
False`` (or a stochastic-vicinity radio, or a disabled/unavailable spatial
index) falls back to the original per-receiver scan; seeded runs replay
bit-identically on either path — the invariant ``tests/test_replay_
determinism.py`` enforces at 500 nodes.  One contract makes this exact:
processes must not *synchronously* broadcast or flip activation from inside
``on_message`` (every protocol in this repository does both through timers);
the batched path decides the whole receiver batch ahead of its same-tick
deliveries, so a synchronous side effect would interleave channel draws — or
shrink the receiver set — differently than the scalar path.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, Hashable, Iterable, List, Mapping, Optional, Set, Tuple

import networkx as nx

from repro.sim.engine import Simulator
from repro.sim.process import Process
from repro.sim.trace import TraceRecorder

from .channel import ChannelModel, PerfectChannel
from .geometry import Point
from .linkstate import LinkStateCache
from .radio import RadioModel
from .spatialindex import UniformGridIndex
from .topology import snapshot_graph

__all__ = ["Network"]


class Network:
    """A dynamic wireless network of protocol processes.

    Parameters
    ----------
    sim:
        The discrete-event simulator the network runs on.
    radio:
        Vicinity model.
    channel:
        Loss/delay/collision model (defaults to a perfect channel).
    mobility:
        Optional mobility model (see :mod:`repro.mobility`); if given,
        :meth:`start_mobility` schedules periodic position updates.
    trace:
        Optional trace recorder; the network records ``send``, ``receive`` and
        ``drop`` events into it.
    use_spatial_index:
        Serve neighbour queries from a uniform grid index when the radio has a
        bounded range (default).  Disable to force the brute-force scans, e.g.
        to benchmark or to cross-check the index.
    vectorized_delivery:
        Serve broadcasts and topology queries from the incremental link-state
        cache with batched channel decisions (default).  Disable to force the
        original per-receiver scan, e.g. to benchmark or to cross-check the
        pipeline; seeded runs are bit-identical either way.  Requires the
        spatial index (it degrades to the scan path otherwise).
    """

    def __init__(self, sim: Simulator, radio: RadioModel,
                 channel: Optional[ChannelModel] = None,
                 mobility: Optional[Any] = None,
                 trace: Optional[TraceRecorder] = None,
                 use_spatial_index: bool = True,
                 vectorized_delivery: bool = True):
        self.sim = sim
        self.radio = radio
        self.channel = channel if channel is not None else PerfectChannel()
        self.mobility = mobility
        self.trace = trace
        self._linkstate: Optional[LinkStateCache] = None
        self.use_spatial_index = bool(use_spatial_index)
        self.vectorized_delivery = bool(vectorized_delivery)
        self._processes: Dict[Hashable, Process] = {}
        self._positions: Dict[Hashable, Point] = {}
        self._order: Dict[Hashable, int] = {}
        self._order_counter = itertools.count()
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_dropped = 0
        self._mobility_handle = None
        self._position_listeners: List[Callable[[float, Dict[Hashable, Point]], None]] = []
        self._index: Optional[UniformGridIndex] = None
        #: sender -> (generation, linkstate, active sorted receivers);
        #: hello-beacon traffic re-broadcasts between topology changes, so
        #: the filtered receiver list is reused until a position/membership/
        #: activation change bumps the generation or a radio change replaces
        #: the link-state cache.
        self._receiver_cache: Dict[Hashable,
                                   Tuple[int, LinkStateCache, List[Hashable]]] = {}
        self._generation = 0
        self._topo_cache: Optional[nx.Graph] = None
        self._topo_cache_key: Optional[Tuple[int, Optional[float]]] = None
        self._directed_cache: Optional[nx.DiGraph] = None
        self._directed_cache_key: Optional[Tuple[int, Optional[float]]] = None
        radio.add_mutation_listener(self.invalidate_topology)

    # ------------------------------------------------------------- topology

    @property
    def node_ids(self) -> List[Hashable]:
        """All node identifiers (active or not), in insertion order."""
        return list(self._processes)

    @property
    def positions(self) -> Dict[Hashable, Point]:
        """Current positions (copy)."""
        return dict(self._positions)

    @property
    def topology_generation(self) -> int:
        """Monotonic counter bumped on every position/membership/activation change."""
        return self._generation

    @property
    def use_spatial_index(self) -> bool:
        """Whether neighbour queries go through the uniform grid index.

        Disabling also drops the link-state cache (it cannot be maintained
        without the grid), so the brute-force baseline pays zero incremental
        upkeep; re-enabling rebuilds both on the next query.
        """
        return self._use_spatial_index

    @use_spatial_index.setter
    def use_spatial_index(self, value: bool) -> None:
        self._use_spatial_index = bool(value)
        if not self._use_spatial_index:
            self._linkstate = None

    @property
    def vectorized_delivery(self) -> bool:
        """Whether the batched link-state pipeline is enabled.

        Disabling drops the link-state cache, so the scan path pays zero
        incremental maintenance (important when benchmarking it);
        re-enabling rebuilds the cache on the next query.
        """
        return self._vectorized_delivery

    @vectorized_delivery.setter
    def vectorized_delivery(self, value: bool) -> None:
        self._vectorized_delivery = bool(value)
        if not self._vectorized_delivery:
            self._linkstate = None

    def position_of(self, node_id: Hashable) -> Point:
        """Current position of ``node_id``."""
        return self._positions[node_id]

    def set_position(self, node_id: Hashable, position: Point) -> None:
        """Teleport ``node_id`` to ``position``."""
        if node_id not in self._processes:
            raise KeyError(f"unknown node {node_id!r}")
        pos = (float(position[0]), float(position[1]))
        self._apply_move(node_id, pos)
        self._generation += 1

    def set_positions(self, positions: Mapping[Hashable, Point]) -> None:
        """Update several node positions at once (one generation bump).

        Unlike a loop of :meth:`set_position` calls, a batch teleport
        invalidates the topology snapshots at most once.  Unknown node ids
        are rejected before any position changes, so a failed call leaves the
        network untouched.  Nodes whose position is unchanged cost nothing —
        neither the grid index nor the link-state cache is touched for them —
        and a batch that moves nobody leaves every cache warm (no
        generation bump).
        """
        updates: Dict[Hashable, Point] = {}
        for node_id, position in positions.items():
            if node_id not in self._processes:
                raise KeyError(f"unknown node {node_id!r}")
            updates[node_id] = (float(position[0]), float(position[1]))
        if not updates:
            return
        applied = False
        for node_id, pos in updates.items():
            if pos != self._positions[node_id]:
                self._apply_move(node_id, pos)
                applied = True
        if applied:
            self._generation += 1

    def _apply_move(self, node_id: Hashable, pos: Point) -> None:
        """Move one node, mirroring the grid index and the link-state cache."""
        self._positions[node_id] = pos
        if self._index is not None:
            self._index.update(node_id, pos)
        if self._linkstate is not None:
            self._linkstate.on_move(node_id)

    def invalidate_topology(self) -> None:
        """Force the next snapshot/neighbour query to recompute.

        Drops the incremental link-state cache too: a radio mutated in place
        can flip arbitrary links without any node moving, so no delta knows
        which links to re-test.  Stock radios call this automatically through
        their mutation listeners; custom radios mutated via private state must
        call it explicitly.
        """
        self._generation += 1
        self._linkstate = None

    def process(self, node_id: Hashable) -> Process:
        """The protocol process attached to ``node_id``."""
        return self._processes[node_id]

    @property
    def processes(self) -> Dict[Hashable, Process]:
        """Mapping node id -> process (copy)."""
        return dict(self._processes)

    def active_nodes(self) -> Set[Hashable]:
        """Identifiers of the currently active nodes.

        The network gates on the internal ``_active`` flag everywhere — the
        same flag :meth:`repro.sim.process.Process.deliver` checks — so both
        delivery pipelines and all snapshot builds share one activity
        predicate even if a subclass overrides the public ``active``
        property.
        """
        return {nid for nid, proc in self._processes.items() if proc._active}

    def add_node(self, process: Process, position: Point) -> None:
        """Attach a protocol process at ``position``."""
        if process.node_id in self._processes:
            raise ValueError(f"node {process.node_id!r} already exists")
        process.bind(self.sim, self)
        pos = (float(position[0]), float(position[1]))
        self._processes[process.node_id] = process
        self._positions[process.node_id] = pos
        self._order[process.node_id] = next(self._order_counter)
        if self._index is not None:
            self._index.insert(process.node_id, pos)
        if self._linkstate is not None:
            self._linkstate.on_insert(process.node_id)
        self._generation += 1

    def remove_node(self, node_id: Hashable) -> Process:
        """Detach and return the process of ``node_id`` (the node disappears)."""
        process = self._processes.pop(node_id)
        self._positions.pop(node_id, None)
        self._order.pop(node_id, None)
        if self._index is not None:
            self._index.remove(node_id)
        if self._linkstate is not None:
            self._linkstate.on_remove(node_id)
        self._receiver_cache.pop(node_id, None)
        self._generation += 1
        return process

    def start(self) -> None:
        """Start every attached process and the mobility process if configured."""
        for process in self._processes.values():
            process.start()
        if self.mobility is not None:
            self.start_mobility()

    # ------------------------------------------------------------------ churn

    def deactivate_node(self, node_id: Hashable) -> None:
        """Power off a node (it keeps its position but neither sends nor receives)."""
        self._processes[node_id].deactivate()

    def activate_node(self, node_id: Hashable) -> None:
        """Power a node back on."""
        self._processes[node_id].activate()

    def notify_activation_change(self, node_id: Hashable, active: bool) -> None:
        """Invalidate snapshots after an activation flip (called by the process)."""
        self._generation += 1

    # -------------------------------------------------------------- mobility

    def add_position_listener(self,
                              listener: Callable[[float, Dict[Hashable, Point]], None]) -> None:
        """Register a callback invoked after each mobility step with (time, positions).

        All listeners of one step receive the *same* snapshot dict; treat it
        as read-only (copy before mutating).
        """
        self._position_listeners.append(listener)

    def start_mobility(self, interval: Optional[float] = None) -> None:
        """Schedule periodic mobility updates.

        ``interval`` defaults to the mobility model's ``step_interval``.
        """
        if self.mobility is None:
            raise RuntimeError("no mobility model configured")
        step = float(interval if interval is not None else self.mobility.step_interval)
        if step <= 0:
            raise ValueError("mobility interval must be positive")
        # Function-level import: the mobility package pulls in models that
        # import repro.net, so a module-level import would be circular.
        from repro.mobility.base import moved_nodes

        def _move() -> None:
            # The model gets a copy: a model that mutates its input in place
            # and returns it would otherwise make the before/after diff
            # vacuous (and could corrupt the live table mid-comparison).
            new_positions = self.mobility.step(dict(self._positions), step)
            # Delta maintenance: paused/static nodes flip no link, so only
            # actually-moved nodes touch the grid and the link-state cache —
            # and a step that moved nobody leaves the snapshot/receiver
            # caches warm (no generation bump).
            moved = moved_nodes(self._positions, new_positions)
            applied = False
            for node_id, pos in moved.items():
                if node_id not in self._processes:
                    # Mobility models may carry state for nodes the network
                    # never knew or has removed; admitting them would break
                    # the positions ↔ processes ↔ index mirror invariant.
                    continue
                self._apply_move(node_id, pos)
                applied = True
            if applied:
                self._generation += 1
            if self._position_listeners:
                # One shared snapshot per step: copying the whole position map
                # once instead of once per listener.
                snapshot = dict(self._positions)
                now = self.sim.now
                for listener in self._position_listeners:
                    listener(now, snapshot)

        self._mobility_handle = self.sim.call_every(step, _move)

    def stop_mobility(self) -> None:
        """Stop the periodic mobility updates."""
        if self._mobility_handle is not None:
            self._mobility_handle.cancel()
            self._mobility_handle = None

    # -------------------------------------------------------- neighbour engine

    def _spatial_index(self) -> Optional[UniformGridIndex]:
        """The grid index, (re)built on demand; ``None`` on the brute-force path."""
        if not self.use_spatial_index:
            return None
        max_range = self.radio.max_range()
        if max_range is None or max_range <= 0:
            return None
        if self._index is None or self._index.cell_size != max_range:
            self._index = UniformGridIndex(max_range, self._positions)
        return self._index

    def _vicinity_candidates(self, sender: Hashable) -> Iterable[Hashable]:
        """Nodes that could possibly hear ``sender``, in insertion order.

        With the index this is the set within ``max_range`` of the sender (the
        radio still applies the exact vicinity test); without it, every other
        node.  Insertion order matters: stochastic radios and channels consume
        their random stream per candidate, so the indexed and brute-force
        paths must inspect candidates identically.
        """
        index = self._spatial_index()
        if index is None:
            return [nid for nid in self._processes if nid != sender]
        candidates = index.neighbors_within(sender, self.radio.max_range())
        candidates.sort(key=self._order.__getitem__)
        return candidates

    def _link_state(self) -> Optional[LinkStateCache]:
        """The incremental link-state cache, (re)built on demand.

        ``None`` whenever the vectorized pipeline is off or the spatial index
        is unavailable (unbounded radio / index disabled) — callers then take
        the scan paths.  A ``max_range`` change (new grid cell size) rebuilds
        the cache against the fresh index.
        """
        if not self.vectorized_delivery:
            return None
        cache = self._linkstate
        if (cache is not None and self.use_spatial_index
                and cache.index is self._index
                and cache.radius == self.radio.max_range()):
            # Fast path (per broadcast / per neighbour query): deltas keep the
            # cache fresh and every stock-radio mutation notifies us.  The
            # radius check preserves the pre-existing contract for custom
            # radios mutated silently: a mutation that changes max_range() is
            # auto-detected (as the snapshot cache key always did); only
            # mutations that leave max_range() untouched require an explicit
            # invalidate_topology().
            return cache
        index = self._spatial_index()
        if index is None:
            return None
        radius = self.radio.max_range()
        if cache is None or cache.radius != radius or cache.index is not index:
            cache = LinkStateCache(radius, self.radio, self._positions,
                                   self._order, index)
            self._linkstate = cache
        return cache

    # ------------------------------------------------------------- messaging

    def broadcast(self, sender: Hashable, payload: Any) -> int:
        """Broadcast ``payload`` from ``sender`` to its current vicinity.

        Returns the number of receivers the channel accepted the message for.
        Actual delivery can still be suppressed if a receiver deactivates
        before the channel delay elapses; ``messages_delivered`` counts only
        messages handed to an active process.

        Radios with a deterministic vicinity take the batched fast path: the
        receiver list comes straight from the link-state cache (no distance
        tests), the channel decides the whole batch at once, and purely
        delayed batches are bulk-scheduled.  Every divergence-relevant step
        (receiver order, RNG consumption, trace records, event sequence
        numbers) is identical to the per-receiver scan below.
        """
        sender_proc = self._processes[sender]
        if not sender_proc._active:
            return 0
        self.messages_sent += 1
        if self.trace is not None:
            self.trace.record(self.sim.now, "send", sender=sender)
        linkstate = self._link_state() if self.radio.deterministic_vicinity() else None
        if linkstate is not None:
            return self._broadcast_batched(linkstate, sender, payload)
        sender_pos = self._positions[sender]
        accepted = 0
        for receiver in self._vicinity_candidates(sender):
            proc = self._processes[receiver]
            if not proc._active:
                continue
            receiver_pos = self._positions[receiver]
            if not self.radio.in_vicinity(sender, receiver, sender_pos, receiver_pos):
                continue
            decision = self.channel.decide(sender, receiver, self.sim.now)
            if not decision.delivered:
                self.messages_dropped += 1
                if self.trace is not None:
                    self.trace.record(self.sim.now, "drop", sender=sender, receiver=receiver,
                                      reason=decision.reason)
                continue
            accepted += 1
            if decision.delay <= 0:
                self._deliver(sender, receiver, payload)
            else:
                self.sim.schedule(decision.delay, self._deliver, sender, receiver, payload)
        return accepted

    def _broadcast_batched(self, linkstate: LinkStateCache, sender: Hashable,
                           payload: Any) -> int:
        """Batched tail of :meth:`broadcast` (deterministic-vicinity radios).

        The sender's cached out-links *are* the vicinity, so the per-receiver
        distance test disappears; active receivers keep insertion order, so
        the channel consumes its RNG exactly as the scalar loop would.
        """
        generation = self._generation
        cached = self._receiver_cache.get(sender)
        # Keyed on (generation, cache instance): every position/membership/
        # activation change bumps the generation, and any radio change —
        # notified or auto-detected through max_range() — replaces the
        # link-state instance.
        if cached is not None and cached[0] == generation and cached[1] is linkstate:
            receivers = cached[2]
        else:
            processes = self._processes
            receivers = [r for r in linkstate.out_neighbors_sorted(sender)
                         if processes[r]._active]
            self._receiver_cache[sender] = (generation, linkstate, receivers)
        if not receivers:
            return 0
        now = self.sim.now
        batch = self.channel.decide_batch(sender, receivers, now)
        delivered, delays = batch.delivered, batch.delays
        accepted = batch.accepted()
        trace = self.trace
        if accepted == len(receivers) and min(delays) > 0:
            # Purely delayed, nothing dropped: one bulk heap insertion.  No
            # callback runs between the decisions and the inserts, so the
            # events get the same contiguous sequence numbers the scalar
            # loop's individual pushes would.
            self.sim.schedule_many(delays, self._deliver,
                                   [(sender, receiver, payload) for receiver in receivers])
            return accepted
        reasons = batch.reasons
        processes = self._processes
        schedule = self.sim.schedule
        deliver = self._deliver
        for i, receiver in enumerate(receivers):
            if not delivered[i]:
                self.messages_dropped += 1
                if trace is not None:
                    trace.record(now, "drop", sender=sender, receiver=receiver,
                                 reason=reasons[i] if reasons is not None else "loss")
                continue
            delay = delays[i]
            if delay <= 0:
                # _deliver inlined: this runs a quarter-million times per
                # simulated second at 1000 nodes, and the call overhead is
                # the largest remaining per-receiver cost.  Semantics are
                # identical — a receiver deactivated by an earlier delivery
                # of this very batch is still skipped, and the counter
                # advances before the process hook exactly as in _deliver.
                proc = processes.get(receiver)
                # _active read directly: the property costs a call per
                # delivery and this loop dominates dense-field runs.
                if proc is None or not proc._active:
                    continue
                self.messages_delivered += 1
                if trace is not None:
                    trace.record(now, "receive", sender=sender, receiver=receiver)
                proc.deliver(sender, payload)
            else:
                schedule(delay, deliver, sender, receiver, payload)
        return accepted

    def _deliver(self, sender: Hashable, receiver: Hashable, payload: Any) -> None:
        proc = self._processes.get(receiver)
        if proc is None or not proc._active:
            return
        self.messages_delivered += 1
        if self.trace is not None:
            self.trace.record(self.sim.now, "receive", sender=sender, receiver=receiver)
        proc.deliver(sender, payload)

    # -------------------------------------------------------------- snapshots

    def _cache_key(self) -> Tuple[int, Optional[float]]:
        # max_range() participates so that e.g. growing the largest range of an
        # AsymmetricRangeRadio invalidates snapshots without an explicit call.
        return (self._generation, self.radio.max_range())

    def _symmetric_snapshot(self) -> nx.Graph:
        """Current symmetric-link graph, rebuilt only when the stamp is stale."""
        key = self._cache_key()
        if self._topo_cache is not None and self._topo_cache_key == key:
            return self._topo_cache
        linkstate = self._link_state()
        if linkstate is not None:
            graph = self._symmetric_from_linkstate(linkstate)
            self._topo_cache = graph
            self._topo_cache_key = key
            return graph
        index = self._spatial_index()
        active = self.active_nodes()
        if index is None:
            graph = snapshot_graph(self._positions, self.radio.link_exists, active=active)
        else:
            graph = nx.Graph()
            graph.add_nodes_from(n for n in self._positions if n in active)
            order = self._order
            edges = []
            for u, v in index.pairs_within(self.radio.max_range()):
                if u not in active or v not in active:
                    continue
                if (self.radio.link_exists(u, v, self._positions[u], self._positions[v])
                        and self.radio.link_exists(v, u, self._positions[v], self._positions[u])):
                    edges.append((u, v) if order[u] < order[v] else (v, u))
            # Sorted insertion keeps adjacency iteration order identical to the
            # brute-force build, so downstream graph algorithms replay equally.
            edges.sort(key=lambda e: (order[e[0]], order[e[1]]))
            graph.add_edges_from(edges)
        self._topo_cache = graph
        self._topo_cache_key = key
        return graph

    def _symmetric_from_linkstate(self, linkstate: LinkStateCache) -> nx.Graph:
        """Symmetric snapshot from cached links — zero link re-tests.

        Nodes are visited in insertion order and each adjacency is served
        pre-sorted, so edge insertion order is exactly the lexicographic
        ``(order[u], order[v])`` order of the scan-based builds — downstream
        graph algorithms replay identically.
        """
        active = self.active_nodes()
        graph = nx.Graph()
        graph.add_nodes_from(n for n in self._positions if n in active)
        order = self._order
        for u in graph:
            u_order = order[u]
            for v in linkstate.out_neighbors_sorted(u):
                if order[v] > u_order and v in active and linkstate.has_arc(v, u):
                    graph.add_edge(u, v)
        return graph

    def _directed_from_linkstate(self, linkstate: LinkStateCache) -> nx.DiGraph:
        """Directed snapshot from cached links — zero link re-tests."""
        active = self.active_nodes()
        graph = nx.DiGraph()
        graph.add_nodes_from(n for n in self._positions if n in active)
        for u in graph:
            graph.add_edges_from((u, v) for v in linkstate.out_neighbors_sorted(u)
                                 if v in active)
        return graph

    def _directed_snapshot(self) -> nx.DiGraph:
        """Current directed-link graph, rebuilt only when the stamp is stale."""
        key = self._cache_key()
        if self._directed_cache is not None and self._directed_cache_key == key:
            return self._directed_cache
        linkstate = self._link_state()
        if linkstate is not None:
            graph = self._directed_from_linkstate(linkstate)
            self._directed_cache = graph
            self._directed_cache_key = key
            return graph
        index = self._spatial_index()
        active = self.active_nodes()
        graph = nx.DiGraph()
        if index is None:
            # Iterate in insertion order, not set order: snapshot iteration
            # order must not depend on PYTHONHASHSEED (determinism invariant).
            nodes = [n for n in self._positions if n in active]
            graph.add_nodes_from(nodes)
            for u in nodes:
                for v in nodes:
                    if u == v:
                        continue
                    if self.radio.link_exists(u, v, self._positions[u], self._positions[v]):
                        graph.add_edge(u, v)
        else:
            graph.add_nodes_from(n for n in self._positions if n in active)
            order = self._order
            arcs = []
            for u, v in index.pairs_within(self.radio.max_range()):
                if u not in active or v not in active:
                    continue
                if self.radio.link_exists(u, v, self._positions[u], self._positions[v]):
                    arcs.append((u, v))
                if self.radio.link_exists(v, u, self._positions[v], self._positions[u]):
                    arcs.append((v, u))
            arcs.sort(key=lambda a: (order[a[0]], order[a[1]]))
            graph.add_edges_from(arcs)
        self._directed_cache = graph
        self._directed_cache_key = key
        return graph

    def topology(self) -> nx.Graph:
        """Symmetric-link snapshot of the current topology over active nodes.

        The returned graph is a copy; mutating it does not corrupt the cache.
        """
        return self._symmetric_snapshot().copy()

    def directed_topology(self) -> nx.DiGraph:
        """Directed-link snapshot (u -> v iff u is in the vicinity of v)."""
        return self._directed_snapshot().copy()

    def neighbors_of(self, node_id: Hashable) -> Set[Hashable]:
        """Symmetric neighbours of ``node_id`` in the current snapshot.

        Served straight from the link-state cache when available — O(degree)
        per query, no graph construction; a warm symmetric snapshot is reused
        otherwise.
        """
        linkstate = self._link_state()
        if linkstate is not None:
            # The cache mirrors the process table, so membership is settled by
            # the process lookup alone.
            processes = self._processes
            proc = processes.get(node_id)
            if proc is None or not proc._active:
                return set()
            return {w for w in linkstate.symmetric_neighbors(node_id)
                    if processes[w]._active}
        graph = self._symmetric_snapshot()
        if node_id not in graph:
            return set()
        return set(graph.neighbors(node_id))

    def __repr__(self) -> str:  # pragma: no cover
        return (f"Network(nodes={len(self._processes)}, active={len(self.active_nodes())}, "
                f"sent={self.messages_sent})")
