"""The wireless network: nodes, positions, broadcast delivery, churn.

:class:`Network` glues together the simulator, a radio model (who can hear
whom), a channel model (losses, delays, collisions), a mobility model (how
positions evolve) and the protocol processes attached to each node.

A broadcast from node ``u`` is delivered to every *active* node ``v`` such that
``u`` is in the vicinity of ``v`` at emission time, unless the channel decides
to drop it.  Delivery happens after the channel delay, through the process
:meth:`repro.sim.process.Process.deliver` hook.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Hashable, Iterable, List, Mapping, Optional, Set, Tuple

import networkx as nx

from repro.sim.engine import Simulator
from repro.sim.process import Process
from repro.sim.trace import TraceRecorder

from .channel import ChannelModel, PerfectChannel
from .geometry import Point
from .radio import RadioModel
from .topology import snapshot_graph

__all__ = ["Network"]


class Network:
    """A dynamic wireless network of protocol processes.

    Parameters
    ----------
    sim:
        The discrete-event simulator the network runs on.
    radio:
        Vicinity model.
    channel:
        Loss/delay/collision model (defaults to a perfect channel).
    mobility:
        Optional mobility model (see :mod:`repro.mobility`); if given,
        :meth:`start_mobility` schedules periodic position updates.
    trace:
        Optional trace recorder; the network records ``send``, ``receive`` and
        ``drop`` events into it.
    """

    def __init__(self, sim: Simulator, radio: RadioModel,
                 channel: Optional[ChannelModel] = None,
                 mobility: Optional[Any] = None,
                 trace: Optional[TraceRecorder] = None):
        self.sim = sim
        self.radio = radio
        self.channel = channel if channel is not None else PerfectChannel()
        self.mobility = mobility
        self.trace = trace
        self._processes: Dict[Hashable, Process] = {}
        self._positions: Dict[Hashable, Point] = {}
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_dropped = 0
        self._mobility_handle = None
        self._position_listeners: List[Callable[[float, Dict[Hashable, Point]], None]] = []

    # ------------------------------------------------------------- topology

    @property
    def node_ids(self) -> List[Hashable]:
        """All node identifiers (active or not), in insertion order."""
        return list(self._processes)

    @property
    def positions(self) -> Dict[Hashable, Point]:
        """Current positions (copy)."""
        return dict(self._positions)

    def position_of(self, node_id: Hashable) -> Point:
        """Current position of ``node_id``."""
        return self._positions[node_id]

    def set_position(self, node_id: Hashable, position: Point) -> None:
        """Teleport ``node_id`` to ``position``."""
        if node_id not in self._processes:
            raise KeyError(f"unknown node {node_id!r}")
        self._positions[node_id] = (float(position[0]), float(position[1]))

    def set_positions(self, positions: Mapping[Hashable, Point]) -> None:
        """Update several node positions at once."""
        for node_id, pos in positions.items():
            self.set_position(node_id, pos)

    def process(self, node_id: Hashable) -> Process:
        """The protocol process attached to ``node_id``."""
        return self._processes[node_id]

    @property
    def processes(self) -> Dict[Hashable, Process]:
        """Mapping node id -> process (copy)."""
        return dict(self._processes)

    def active_nodes(self) -> Set[Hashable]:
        """Identifiers of the currently active nodes."""
        return {nid for nid, proc in self._processes.items() if proc.active}

    def add_node(self, process: Process, position: Point) -> None:
        """Attach a protocol process at ``position``."""
        if process.node_id in self._processes:
            raise ValueError(f"node {process.node_id!r} already exists")
        process.bind(self.sim, self)
        self._processes[process.node_id] = process
        self._positions[process.node_id] = (float(position[0]), float(position[1]))

    def remove_node(self, node_id: Hashable) -> Process:
        """Detach and return the process of ``node_id`` (the node disappears)."""
        process = self._processes.pop(node_id)
        self._positions.pop(node_id, None)
        return process

    def start(self) -> None:
        """Start every attached process and the mobility process if configured."""
        for process in self._processes.values():
            process.start()
        if self.mobility is not None:
            self.start_mobility()

    # ------------------------------------------------------------------ churn

    def deactivate_node(self, node_id: Hashable) -> None:
        """Power off a node (it keeps its position but neither sends nor receives)."""
        self._processes[node_id].deactivate()

    def activate_node(self, node_id: Hashable) -> None:
        """Power a node back on."""
        self._processes[node_id].activate()

    # -------------------------------------------------------------- mobility

    def add_position_listener(self,
                              listener: Callable[[float, Dict[Hashable, Point]], None]) -> None:
        """Register a callback invoked after each mobility step with (time, positions)."""
        self._position_listeners.append(listener)

    def start_mobility(self, interval: Optional[float] = None) -> None:
        """Schedule periodic mobility updates.

        ``interval`` defaults to the mobility model's ``step_interval``.
        """
        if self.mobility is None:
            raise RuntimeError("no mobility model configured")
        step = float(interval if interval is not None else self.mobility.step_interval)
        if step <= 0:
            raise ValueError("mobility interval must be positive")

        def _move() -> None:
            new_positions = self.mobility.step(self._positions, step)
            self._positions.update(
                {n: (float(p[0]), float(p[1])) for n, p in new_positions.items()})
            for listener in self._position_listeners:
                listener(self.sim.now, dict(self._positions))

        self._mobility_handle = self.sim.call_every(step, _move)

    def stop_mobility(self) -> None:
        """Stop the periodic mobility updates."""
        if self._mobility_handle is not None:
            self._mobility_handle.cancel()
            self._mobility_handle = None

    # ------------------------------------------------------------- messaging

    def broadcast(self, sender: Hashable, payload: Any) -> int:
        """Broadcast ``payload`` from ``sender`` to its current vicinity.

        Returns the number of receivers the message was (eventually) delivered to.
        """
        sender_proc = self._processes[sender]
        if not sender_proc.active:
            return 0
        self.messages_sent += 1
        if self.trace is not None:
            self.trace.record(self.sim.now, "send", sender=sender)
        sender_pos = self._positions[sender]
        delivered = 0
        for receiver, proc in self._processes.items():
            if receiver == sender or not proc.active:
                continue
            receiver_pos = self._positions[receiver]
            if not self.radio.in_vicinity(sender, receiver, sender_pos, receiver_pos):
                continue
            decision = self.channel.decide(sender, receiver, self.sim.now)
            if not decision.delivered:
                self.messages_dropped += 1
                if self.trace is not None:
                    self.trace.record(self.sim.now, "drop", sender=sender, receiver=receiver,
                                      reason=decision.reason)
                continue
            delivered += 1
            self.messages_delivered += 1
            if decision.delay <= 0:
                self._deliver(sender, receiver, payload)
            else:
                self.sim.schedule(decision.delay, self._deliver, sender, receiver, payload)
        return delivered

    def _deliver(self, sender: Hashable, receiver: Hashable, payload: Any) -> None:
        proc = self._processes.get(receiver)
        if proc is None or not proc.active:
            return
        if self.trace is not None:
            self.trace.record(self.sim.now, "receive", sender=sender, receiver=receiver)
        proc.deliver(sender, payload)

    # -------------------------------------------------------------- snapshots

    def topology(self) -> nx.Graph:
        """Symmetric-link snapshot of the current topology over active nodes."""
        return snapshot_graph(self._positions, self.radio.link_exists,
                              active=self.active_nodes())

    def directed_topology(self) -> nx.DiGraph:
        """Directed-link snapshot (u -> v iff u is in the vicinity of v)."""
        graph = nx.DiGraph()
        active = self.active_nodes()
        graph.add_nodes_from(active)
        for u in active:
            for v in active:
                if u == v:
                    continue
                if self.radio.link_exists(u, v, self._positions[u], self._positions[v]):
                    graph.add_edge(u, v)
        return graph

    def neighbors_of(self, node_id: Hashable) -> Set[Hashable]:
        """Symmetric neighbours of ``node_id`` in the current snapshot."""
        graph = self.topology()
        if node_id not in graph:
            return set()
        return set(graph.neighbors(node_id))

    def __repr__(self) -> str:  # pragma: no cover
        return (f"Network(nodes={len(self._processes)}, active={len(self.active_nodes())}, "
                f"sent={self.messages_sent})")
