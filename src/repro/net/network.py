"""The wireless network: nodes, positions, broadcast delivery, churn.

:class:`Network` glues together the simulator, a radio model (who can hear
whom), a channel model (losses, delays, collisions), a mobility model (how
positions evolve) and the protocol processes attached to each node.

A broadcast from node ``u`` is delivered to every *active* node ``v`` such that
``u`` is in the vicinity of ``v`` at emission time, unless the channel decides
to drop it.  Delivery happens after the channel delay, through the process
:meth:`repro.sim.process.Process.deliver` hook.

Neighbour engine
----------------
When the radio reports a finite :meth:`~repro.net.radio.RadioModel.max_range`,
the network serves vicinity and topology queries from a
:class:`~repro.net.spatialindex.UniformGridIndex` over the node positions
instead of scanning every process, making broadcasts and snapshots cost
O(local density) instead of O(N).  Topology snapshots are additionally cached
behind a *generation stamp*: every position change (``set_position``, mobility
steps), membership change (``add_node`` / ``remove_node``) and activation
change bumps the generation, and a snapshot is rebuilt only when its stamp is
stale.  Stock radios notify the network of in-place parameter mutations
(their setters call :meth:`~repro.net.radio.RadioModel.notify_mutation`);
custom radios mutated through private state must be followed by an explicit
:meth:`Network.invalidate_topology`.  Radios with unbounded range
(``max_range() is None``) keep the original brute-force scan, still behind the
same snapshot cache.

Vectorized delivery pipeline
----------------------------
On top of the grid, the network maintains an incremental
:class:`~repro.net.linkstate.LinkStateCache`: the directed edge set
``u -> v iff link_exists(u, v)`` is patched per delta (only the links of
moved / added / removed nodes are re-tested), so topology refreshes under
mobility no longer rescan candidate pairs.  Broadcasts from radios whose
vicinity test is deterministic
(:meth:`~repro.net.radio.RadioModel.deterministic_vicinity`) take a batched
fast path: the receiver list is served from the sender's cached out-links
(zero distance tests), the channel decides the whole batch in one
:meth:`~repro.net.channel.ChannelModel.decide_batch` call (vectorized RNG
draws consuming the identical stream as the scalar loop), and purely-delayed
batches are bulk-inserted through
:meth:`~repro.sim.engine.Simulator.schedule_many`.  ``vectorized_delivery=
False`` (or a stochastic-vicinity radio, or a disabled/unavailable spatial
index) falls back to the original per-receiver scan; seeded runs replay
bit-identically on either path — the invariant ``tests/test_replay_
determinism.py`` enforces at 500 nodes.  One contract makes this exact:
processes must not *synchronously* broadcast or flip activation from inside
``on_message`` (every protocol in this repository does both through timers);
the batched path decides the whole receiver batch ahead of its same-tick
deliveries, so a synchronous side effect would interleave channel draws — or
shrink the receiver set — differently than the scalar path.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Hashable, Iterable, List, Mapping, Optional, Set, Tuple

import networkx as nx
import numpy as np

from repro.obs import current as _obs_current
from repro.sim.engine import Simulator
from repro.sim.process import Process
from repro.sim.trace import TraceRecorder

from .arraystate import ArrayLinkState, NodeArrayStore
from .channel import ChannelModel, PerfectChannel
from .geometry import Point
from .linkstate import LinkStateCache
from .radio import RadioModel
from .spatialindex import UniformGridIndex
from .topology import snapshot_graph

__all__ = ["Network"]


class Network:
    """A dynamic wireless network of protocol processes.

    Parameters
    ----------
    sim:
        The discrete-event simulator the network runs on.
    radio:
        Vicinity model.
    channel:
        Loss/delay/collision model (defaults to a perfect channel).
    mobility:
        Optional mobility model (see :mod:`repro.mobility`); if given,
        :meth:`start_mobility` schedules periodic position updates.
    trace:
        Optional trace recorder; the network records ``send``, ``receive`` and
        ``drop`` events into it.
    use_spatial_index:
        Serve neighbour queries from a uniform grid index when the radio has a
        bounded range (default).  Disable to force the brute-force scans, e.g.
        to benchmark or to cross-check the index.
    vectorized_delivery:
        Serve broadcasts and topology queries from the incremental link-state
        cache with batched channel decisions (default).  Disable to force the
        original per-receiver scan, e.g. to benchmark or to cross-check the
        pipeline; seeded runs are bit-identical either way.  Requires the
        spatial index (it degrades to the scan path otherwise).
    array_state:
        Keep node state mirrored in contiguous numpy arrays
        (:class:`~repro.net.arraystate.NodeArrayStore`) and serve the
        vectorized pipeline from the CSR
        :class:`~repro.net.arraystate.ArrayLinkState` whenever the radio has a
        uniform link radius (default).  Disable to force the dict-based
        incremental cache, e.g. to benchmark or to cross-check the array
        backend; seeded runs are bit-identical either way.
    incremental_csr:
        Serve small position deltas by patching the CSR adjacency in place
        (default) instead of rebuilding it wholesale; membership changes and
        large deltas always rebuild.  Disable to force the full rebuild as
        the reference path; seeded runs are bit-identical either way (the
        patch provably reproduces the rebuild's arrays).
    """

    def __init__(self, sim: Simulator, radio: RadioModel,
                 channel: Optional[ChannelModel] = None,
                 mobility: Optional[Any] = None,
                 trace: Optional[TraceRecorder] = None,
                 use_spatial_index: bool = True,
                 vectorized_delivery: bool = True,
                 array_state: bool = True,
                 incremental_csr: bool = True):
        self.sim = sim
        self.radio = radio
        self.channel = channel if channel is not None else PerfectChannel()
        self.mobility = mobility
        self.trace = trace
        self._linkstate: Optional[LinkStateCache] = None
        self._store: Optional[NodeArrayStore] = None
        self._array_ls: Optional[ArrayLinkState] = None
        self.use_spatial_index = bool(use_spatial_index)
        self.vectorized_delivery = bool(vectorized_delivery)
        self.array_state = bool(array_state)
        self.incremental_csr = bool(incremental_csr)
        self._processes: Dict[Hashable, Process] = {}
        self._positions: Dict[Hashable, Point] = {}
        self._order: Dict[Hashable, int] = {}
        # A plain int, not itertools.count(): counts don't pickle, and the
        # sharded snapshot-restore path serializes built networks wholesale.
        self._next_order = 0
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_dropped = 0
        #: True while every attached process uses the stock ``deliver``;
        #: unlocks direct ``on_message`` dispatch in the batched loop.  Only
        #: ever cleared (a conservative latch: removing the one overriding
        #: process doesn't re-arm the fast path).
        self._stock_deliver = True
        self._mobility_handle = None
        self._position_listeners: List[Callable[[float, Dict[Hashable, Point]], None]] = []
        self._index: Optional[UniformGridIndex] = None
        #: sender -> (generation, linkstate, active sorted receivers, their
        #: processes as list and object ndarray, their store rows or None);
        #: hello-beacon traffic re-broadcasts between topology changes, so the
        #: filtered receiver batch is reused until a position/membership/
        #: activation change bumps the generation or a radio change replaces
        #: the link-state cache.
        self._receiver_cache: Dict[Hashable,
                                   Tuple[int, Any, List[Hashable],
                                         List[Process], np.ndarray,
                                         Optional[np.ndarray]]] = {}
        self._generation = 0
        self._topo_cache: Optional[nx.Graph] = None
        self._topo_cache_key: Optional[Tuple[int, Optional[float]]] = None
        self._directed_cache: Optional[nx.DiGraph] = None
        self._directed_cache_key: Optional[Tuple[int, Optional[float]]] = None
        #: deterministic_vicinity() hoisted out of the per-broadcast path; it
        #: is a class-level constant for every stock radio, and any custom
        #: radio mutating it must invalidate_topology() (which refreshes it).
        self._det_vicinity = radio.deterministic_vicinity()
        radio.add_mutation_listener(self.invalidate_topology)
        # Observability: captured once here; broadcast/delivery hot paths pay
        # a single attribute test when disabled (same trick as is_app_payload).
        obs = _obs_current()
        self._obs = obs
        self._obs_broadcasts = obs.registry.counter("net.broadcasts") if obs else None
        self._obs_delivered = obs.registry.counter("net.delivered") if obs else None
        self._obs_dropped = obs.registry.counter("net.dropped") if obs else None

    def recapture_obs(self) -> None:
        """Re-point the cached obs handles (and the lazily built link-state
        caches') at the process-local context — see
        :meth:`repro.sim.engine.Simulator.recapture_obs`."""
        obs = _obs_current()
        self._obs = obs
        self._obs_broadcasts = obs.registry.counter("net.broadcasts") if obs else None
        self._obs_delivered = obs.registry.counter("net.delivered") if obs else None
        self._obs_dropped = obs.registry.counter("net.dropped") if obs else None
        als = self._array_ls
        if als is not None:
            als._obs = obs
        cache = self._linkstate
        if cache is not None:
            cache._obs_moves = (obs.registry.counter("topology.patch_moves")
                                if obs else None)
            cache._obs_rebuilds = (obs.registry.counter("topology.dict_rebuilds")
                                   if obs else None)

    def __setstate__(self, state):
        """Re-register the radio mutation listener after unpickling.

        The radio drops its (weak, process-local) listener list when
        pickled, so a restored network must subscribe again or in-place
        radio mutations would silently serve stale neighbourhoods.
        """
        self.__dict__.update(state)
        self.radio.add_mutation_listener(self.invalidate_topology)

    # ------------------------------------------------------------- topology

    @property
    def node_ids(self) -> List[Hashable]:
        """All node identifiers (active or not), in insertion order."""
        return list(self._processes)

    @property
    def positions(self) -> Dict[Hashable, Point]:
        """Current positions (copy)."""
        return dict(self._positions)

    @property
    def topology_generation(self) -> int:
        """Monotonic counter bumped on every position/membership/activation change."""
        return self._generation

    @property
    def use_spatial_index(self) -> bool:
        """Whether neighbour queries go through the uniform grid index.

        Disabling also drops the link-state cache (it cannot be maintained
        without the grid), so the brute-force baseline pays zero incremental
        upkeep; re-enabling rebuilds both on the next query.
        """
        return self._use_spatial_index

    @use_spatial_index.setter
    def use_spatial_index(self, value: bool) -> None:
        self._use_spatial_index = bool(value)
        if not self._use_spatial_index:
            self._linkstate = None
            self._array_ls = None

    @property
    def vectorized_delivery(self) -> bool:
        """Whether the batched link-state pipeline is enabled.

        Disabling drops the link-state cache, so the scan path pays zero
        incremental maintenance (important when benchmarking it);
        re-enabling rebuilds the cache on the next query.
        """
        return self._vectorized_delivery

    @vectorized_delivery.setter
    def vectorized_delivery(self, value: bool) -> None:
        self._vectorized_delivery = bool(value)
        if not self._vectorized_delivery:
            self._linkstate = None
            self._array_ls = None

    @property
    def array_state(self) -> bool:
        """Whether node state is mirrored into the contiguous array store.

        Disabling drops the store and the CSR link-state; the vectorized
        pipeline then runs on the dict-based incremental cache.  Re-enabling
        rebuilds both from the node table on the next query.
        """
        return self._array_state

    @array_state.setter
    def array_state(self, value: bool) -> None:
        self._array_state = bool(value)
        if not self._array_state:
            self._store = None
            self._array_ls = None

    @property
    def incremental_csr(self) -> bool:
        """Whether small position deltas patch the CSR instead of rebuilding.

        Toggling propagates to a live :class:`ArrayLinkState`; turning the
        patch path off additionally forces one full rebuild so every later
        refresh runs the reference path from reference state.
        """
        return self._incremental_csr

    @incremental_csr.setter
    def incremental_csr(self, value: bool) -> None:
        self._incremental_csr = bool(value)
        als = getattr(self, "_array_ls", None)
        if als is not None:
            als.incremental = self._incremental_csr
            if not self._incremental_csr:
                als.mark_dirty()

    def position_of(self, node_id: Hashable) -> Point:
        """Current position of ``node_id``."""
        return self._positions[node_id]

    def set_position(self, node_id: Hashable, position: Point) -> None:
        """Teleport ``node_id`` to ``position``."""
        if node_id not in self._processes:
            raise KeyError(f"unknown node {node_id!r}")
        pos = (float(position[0]), float(position[1]))
        self._apply_move(node_id, pos)
        self._generation += 1

    def set_positions(self, positions: Mapping[Hashable, Point]) -> None:
        """Update several node positions at once (one generation bump).

        Unlike a loop of :meth:`set_position` calls, a batch teleport
        invalidates the topology snapshots at most once.  Unknown node ids
        are rejected before any position changes, so a failed call leaves the
        network untouched.  Nodes whose position is unchanged cost nothing —
        neither the grid index nor the link-state cache is touched for them —
        and a batch that moves nobody leaves every cache warm (no
        generation bump).
        """
        if (self._store is not None and self._linkstate is None
                and self._index is None and len(positions) > 1):
            # Bulk path: membership validated with one C-level subset check,
            # coordinates coerced by one array conversion — no per-node
            # python validation.  Exotic inputs the conversion cannot digest
            # (ragged tuples, extra coordinates) take the scalar loop below,
            # which preserves the historical lenient coercion.
            if not (self._processes.keys() >= positions.keys()):
                unknown = next(nid for nid in positions
                               if nid not in self._processes)
                raise KeyError(f"unknown node {unknown!r}")
            try:
                coords = np.fromiter(positions.values(),
                                     dtype=np.dtype((np.float64, 2)),
                                     count=len(positions))
            except (TypeError, ValueError):
                coords = None
            if coords is not None and coords.ndim == 2 and coords.shape[1] == 2:
                self._bulk_position_update(list(positions), coords)
                return
        updates: Dict[Hashable, Point] = {}
        for node_id, position in positions.items():
            if node_id not in self._processes:
                raise KeyError(f"unknown node {node_id!r}")
            updates[node_id] = (float(position[0]), float(position[1]))
        self._apply_position_updates(updates)

    def _bulk_position_update(self, ids: List[Hashable],
                              coords: np.ndarray) -> None:
        """Masked-array tail of the batch teleports (store-only mirrors).

        Only valid when neither the grid index nor the dict link-state cache
        exists (both need per-node deltas): changed rows are detected and
        written in whole-array operations, the position dict is patched for
        the movers only, and the generation bumps once iff anything moved.
        """
        store = self._store
        rows = np.fromiter(map(store.row_of.__getitem__, ids),
                           dtype=np.int64, count=len(ids))
        changed = (store.xy[rows] != coords).any(axis=1)
        if not changed.any():
            return
        moved = np.flatnonzero(changed)
        store.write_rows(rows[moved], coords[moved])
        positions = self._positions
        for k, xy in zip(moved.tolist(), coords[moved].tolist()):
            positions[ids[k]] = (xy[0], xy[1])
        if self._array_ls is not None:
            self._array_ls.mark_rows_dirty(rows[moved])
        self._generation += 1

    def _apply_position_updates(self, updates: Dict[Hashable, Point]) -> None:
        """Apply pre-validated position updates with one generation bump.

        On the array backend (store present, no dict link-state to patch
        per-node) changed rows are written in a single masked array
        assignment; otherwise each changed node goes through
        :meth:`_apply_move` so the grid index and the dict cache see their
        per-node deltas.  Either way, unchanged nodes cost nothing and a
        batch that moves nobody leaves every cache warm.
        """
        if not updates:
            return
        if (self._store is not None and self._linkstate is None
                and self._index is None and len(updates) > 1):
            self._bulk_position_update(
                list(updates), np.fromiter(updates.values(),
                                           dtype=np.dtype((np.float64, 2)),
                                           count=len(updates)))
            return
        applied = False
        for node_id, pos in updates.items():
            if pos != self._positions[node_id]:
                self._apply_move(node_id, pos)
                applied = True
        if applied:
            self._generation += 1

    def _apply_move(self, node_id: Hashable, pos: Point) -> None:
        """Move one node, mirroring the grid index, store and link-state caches."""
        self._positions[node_id] = pos
        if self._store is not None:
            self._store.update(node_id, pos)
        if self._index is not None:
            self._index.update(node_id, pos)
        if self._linkstate is not None:
            self._linkstate.on_move(node_id)
        if self._array_ls is not None:
            self._array_ls.mark_row_dirty(self._store.row_of[node_id])

    def invalidate_topology(self) -> None:
        """Force the next snapshot/neighbour query to recompute.

        Drops the incremental link-state cache too: a radio mutated in place
        can flip arbitrary links without any node moving, so no delta knows
        which links to re-test.  Stock radios call this automatically through
        their mutation listeners; custom radios mutated via private state must
        call it explicitly.
        """
        self._generation += 1
        self._linkstate = None
        # A mutation can change the uniform link radius too; the node store
        # itself only mirrors positions and survives radio changes.
        self._array_ls = None
        self._det_vicinity = self.radio.deterministic_vicinity()

    def process(self, node_id: Hashable) -> Process:
        """The protocol process attached to ``node_id``."""
        return self._processes[node_id]

    @property
    def processes(self) -> Dict[Hashable, Process]:
        """Mapping node id -> process (copy)."""
        return dict(self._processes)

    def active_nodes(self) -> Set[Hashable]:
        """Identifiers of the currently active nodes.

        The network gates on the internal ``_active`` flag everywhere — the
        same flag :meth:`repro.sim.process.Process.deliver` checks — so both
        delivery pipelines and all snapshot builds share one activity
        predicate even if a subclass overrides the public ``active``
        property.
        """
        return {nid for nid, proc in self._processes.items() if proc._active}

    def add_node(self, process: Process, position: Point) -> None:
        """Attach a protocol process at ``position``."""
        if process.node_id in self._processes:
            raise ValueError(f"node {process.node_id!r} already exists")
        process.bind(self.sim, self)
        if type(process).deliver is not Process.deliver:
            self._stock_deliver = False
        pos = (float(position[0]), float(position[1]))
        self._processes[process.node_id] = process
        self._positions[process.node_id] = pos
        order = self._next_order
        self._next_order += 1
        self._order[process.node_id] = order
        if self._store is not None:
            self._store.insert(process.node_id, pos, order, process,
                               process._active)
        if self._index is not None:
            self._index.insert(process.node_id, pos)
        if self._linkstate is not None:
            self._linkstate.on_insert(process.node_id)
        if self._array_ls is not None:
            self._array_ls.mark_dirty()
        self._generation += 1

    def remove_node(self, node_id: Hashable) -> Process:
        """Detach and return the process of ``node_id`` (the node disappears)."""
        process = self._processes.pop(node_id)
        self._positions.pop(node_id, None)
        self._order.pop(node_id, None)
        if self._store is not None:
            self._store.remove(node_id)
        if self._index is not None:
            self._index.remove(node_id)
        if self._linkstate is not None:
            self._linkstate.on_remove(node_id)
        if self._array_ls is not None:
            self._array_ls.mark_dirty()
        self._receiver_cache.pop(node_id, None)
        self._generation += 1
        return process

    def start(self) -> None:
        """Start every attached process and the mobility process if configured."""
        for process in self._processes.values():
            process.start()
        if self.mobility is not None:
            self.start_mobility()

    # ------------------------------------------------------------------ churn

    def deactivate_node(self, node_id: Hashable) -> None:
        """Power off a node (it keeps its position but neither sends nor receives)."""
        self._processes[node_id].deactivate()

    def activate_node(self, node_id: Hashable) -> None:
        """Power a node back on."""
        self._processes[node_id].activate()

    def notify_activation_change(self, node_id: Hashable, active: bool) -> None:
        """Invalidate snapshots after an activation flip (called by the process)."""
        if self._store is not None:
            self._store.set_active(node_id, active)
        self._generation += 1

    # -------------------------------------------------------------- mobility

    def add_position_listener(self,
                              listener: Callable[[float, Dict[Hashable, Point]], None]) -> None:
        """Register a callback invoked after each mobility step with (time, positions).

        All listeners of one step receive the *same* snapshot dict; treat it
        as read-only (copy before mutating).
        """
        self._position_listeners.append(listener)

    def start_mobility(self, interval: Optional[float] = None) -> None:
        """Schedule periodic mobility updates.

        ``interval`` defaults to the mobility model's ``step_interval``.
        """
        if self.mobility is None:
            raise RuntimeError("no mobility model configured")
        step = float(interval if interval is not None else self.mobility.step_interval)
        if step <= 0:
            raise ValueError("mobility interval must be positive")
        def _move() -> None:
            # The model gets a copy: a model that mutates its input in place
            # and returns it would otherwise make the before/after diff
            # vacuous (and could corrupt the live table mid-comparison).
            new_positions = self.mobility.step(dict(self._positions), step)
            processes = self._processes
            # Mobility models may carry state for nodes the network never
            # knew or has removed; admitting them would break the
            # positions ↔ processes ↔ index mirror invariant.  Change
            # detection (paused/static nodes flip no link and must leave
            # every cache warm) happens inside the update application — as a
            # whole-array comparison on the bulk path, per node otherwise —
            # so no separate python diff pass runs here.
            updates = {node_id: pos for node_id, pos in new_positions.items()
                       if node_id in processes}
            self._apply_position_updates(updates)
            if self._position_listeners:
                # One shared snapshot per step: copying the whole position map
                # once instead of once per listener.
                snapshot = dict(self._positions)
                now = self.sim.now
                for listener in self._position_listeners:
                    listener(now, snapshot)

        self._mobility_handle = self.sim.call_every(step, _move)

    def stop_mobility(self) -> None:
        """Stop the periodic mobility updates."""
        if self._mobility_handle is not None:
            self._mobility_handle.cancel()
            self._mobility_handle = None

    # -------------------------------------------------------- neighbour engine

    def _spatial_index(self) -> Optional[UniformGridIndex]:
        """The grid index, (re)built on demand; ``None`` on the brute-force path."""
        if not self.use_spatial_index:
            return None
        max_range = self.radio.max_range()
        if max_range is None or max_range <= 0:
            return None
        if self._index is None or self._index.cell_size != max_range:
            self._index = UniformGridIndex(max_range, self._positions)
        return self._index

    def _node_store(self) -> NodeArrayStore:
        """The array mirror of the node table, built on demand.

        Once built it is maintained incrementally by every membership /
        position / activation mutation, so the rebuild-from-scratch below
        only runs after ``array_state`` is toggled back on.
        """
        store = self._store
        if store is None:
            store = NodeArrayStore()
            order = self._order
            positions = self._positions
            for node_id, proc in self._processes.items():
                store.insert(node_id, positions[node_id], order[node_id],
                             proc, proc._active)
            self._store = store
        return store

    def _vicinity_candidates(self, sender: Hashable) -> Iterable[Hashable]:
        """Nodes that could possibly hear ``sender``, in insertion order.

        With the index this is the set within ``max_range`` of the sender (the
        radio still applies the exact vicinity test); without it, every other
        node.  Insertion order matters: stochastic radios and channels consume
        their random stream per candidate, so the indexed and brute-force
        paths must inspect candidates identically.
        """
        index = self._spatial_index()
        if index is None:
            return [nid for nid in self._processes if nid != sender]
        candidates = index.neighbors_within(sender, self.radio.max_range())
        candidates.sort(key=self._order.__getitem__)
        return candidates

    def _link_state(self):
        """The link-state cache, (re)built on demand.

        Three-way dispatch.  With ``array_state`` on and a uniform-link-radius
        radio, the CSR :class:`~repro.net.arraystate.ArrayLinkState` serves
        every query straight from the node store.  Non-uniform radios fall
        back to the dict-based incremental :class:`LinkStateCache`.  ``None``
        whenever the vectorized pipeline is off or the spatial index is
        unavailable (unbounded radio / index disabled) — callers then take
        the scan paths.  A radius change — assigned through a notifying
        setter or mutated silently — is auto-detected per query, exactly as
        the ``max_range`` check always did for the dict cache.
        """
        if not self.vectorized_delivery:
            return None
        if self._array_state and self._use_spatial_index:
            als = self._array_ls
            radius = self.radio.uniform_link_radius()
            if als is not None and als.radius == radius:
                return als
            # A uniform radius only qualifies alongside a bounded max_range:
            # radios that report max_range() is None opt out of every spatial
            # structure (e.g. custom always-hear radios that inherit a stock
            # uniform_link_radius) and keep the brute-force scan.
            if (radius is not None and radius > 0
                    and self.radio.max_range() is not None):
                # now_fn is a bound method, not a lambda, so a built network
                # stays picklable (sharded snapshot-restore builds).
                als = ArrayLinkState(radius, self._node_store(),
                                     now_fn=self._sim_now,
                                     obs=self._obs,
                                     incremental=self._incremental_csr)
                self._array_ls = als
                return als
            self._array_ls = None
        cache = self._linkstate
        if (cache is not None and self.use_spatial_index
                and cache.index is self._index
                and cache.radius == self.radio.max_range()):
            # Fast path (per broadcast / per neighbour query): deltas keep the
            # cache fresh and every stock-radio mutation notifies us.  The
            # radius check preserves the pre-existing contract for custom
            # radios mutated silently: a mutation that changes max_range() is
            # auto-detected (as the snapshot cache key always did); only
            # mutations that leave max_range() untouched require an explicit
            # invalidate_topology().
            return cache
        index = self._spatial_index()
        if index is None:
            return None
        radius = self.radio.max_range()
        if cache is None or cache.radius != radius or cache.index is not index:
            cache = LinkStateCache(radius, self.radio, self._positions,
                                   self._order, index, obs=self._obs)
            self._linkstate = cache
        return cache

    def _sim_now(self) -> float:
        """Sim-clock reader handed to lazily built caches (picklable)."""
        return self.sim.now

    # ------------------------------------------------------------- messaging

    def broadcast(self, sender: Hashable, payload: Any) -> int:
        """Broadcast ``payload`` from ``sender`` to its current vicinity.

        Returns the number of receivers the channel accepted the message for.
        Actual delivery can still be suppressed if a receiver deactivates
        before the channel delay elapses; ``messages_delivered`` counts only
        messages handed to an active process.

        Radios with a deterministic vicinity take the batched fast path: the
        receiver list comes straight from the link-state cache (no distance
        tests), the channel decides the whole batch at once, and purely
        delayed batches are bulk-scheduled.  Every divergence-relevant step
        (receiver order, RNG consumption, trace records, event sequence
        numbers) is identical to the per-receiver scan below.
        """
        sender_proc = self._processes[sender]
        if not sender_proc._active:
            return 0
        self.messages_sent += 1
        if self._obs_broadcasts is not None:
            self._obs_broadcasts.inc()
        if self.trace is not None:
            self.trace.record(self.sim.now, "send", sender=sender)
        linkstate = self._link_state() if self._det_vicinity else None
        if linkstate is not None:
            return self._broadcast_batched(linkstate, sender, payload)
        sender_pos = self._positions[sender]
        accepted = 0
        for receiver in self._vicinity_candidates(sender):
            proc = self._processes[receiver]
            if not proc._active:
                continue
            receiver_pos = self._positions[receiver]
            if not self.radio.in_vicinity(sender, receiver, sender_pos, receiver_pos):
                continue
            decision = self.channel.decide(sender, receiver, self.sim.now)
            if not decision.delivered:
                self.messages_dropped += 1
                if self._obs_dropped is not None:
                    self._obs_dropped.inc()
                if self.trace is not None:
                    self.trace.record(self.sim.now, "drop", sender=sender, receiver=receiver,
                                      reason=decision.reason)
                continue
            accepted += 1
            if decision.delay <= 0:
                self._deliver(sender, receiver, payload)
            else:
                self.sim.schedule(decision.delay, self._deliver, sender, receiver, payload)
        return accepted

    def _receiver_batch(self, linkstate: Any, sender: Hashable):
        """Cached ``(receivers, procs, procs_arr, rows)`` for one sender.

        Keyed on (generation, link-state instance): every position/membership/
        activation change bumps the generation, and any radio change —
        notified or auto-detected through the per-query radius check —
        replaces the link-state instance.  Caching the process objects (list
        + object ndarray) next to the ids lets delivery loops skip one dict
        lookup per receiver and gather accepted subsets with one masked
        index.  ``rows`` holds the receivers' store-row indices on the array
        backend (``None`` on the dict cache); the sharded executor gathers
        per-receiver ownership from it with one indexing operation.  Shared
        by the stock batched broadcast and the ownership-aware sharded
        variant (:mod:`repro.shard`), which must consume receivers in exactly
        this order to stay bit-identical.
        """
        generation = self._generation
        cached = self._receiver_cache.get(sender)
        if cached is not None:
            gen_c, ls_c, receivers, procs, procs_arr, rows = cached
            if gen_c == generation and ls_c is linkstate:
                return receivers, procs, procs_arr, rows
        if type(linkstate) is ArrayLinkState:
            receivers, procs_arr = linkstate.active_receivers(sender, generation)
            procs = procs_arr.tolist()
            rows = linkstate.active_receiver_rows(sender, generation)
        else:
            processes = self._processes
            receivers = [r for r in linkstate.out_neighbors_sorted(sender)
                         if processes[r]._active]
            procs = [processes[r] for r in receivers]
            procs_arr = np.empty(len(procs), dtype=object)
            procs_arr[:] = procs
            rows = None
        self._receiver_cache[sender] = (generation, linkstate, receivers,
                                        procs, procs_arr, rows)
        return receivers, procs, procs_arr, rows

    def _broadcast_batched(self, linkstate: Any, sender: Hashable,
                           payload: Any) -> int:
        """Batched tail of :meth:`broadcast` (deterministic-vicinity radios).

        The sender's cached out-links *are* the vicinity, so the per-receiver
        distance test disappears; active receivers keep insertion order, so
        the channel consumes its RNG exactly as the scalar loop would.
        """
        receivers, procs, procs_arr, _rows = self._receiver_batch(linkstate, sender)
        if not receivers:
            return 0
        now = self.sim.now
        channel = self.channel
        trace = self.trace
        obs = self._obs
        if (trace is None and self._stock_deliver
                and not getattr(payload, "is_app_payload", False)):
            # Hottest path of dense-field runs (a quarter-million deliveries
            # per simulated second at 1000 nodes): with no trace, no app
            # payload and only stock ``deliver`` implementations, probe the
            # channel's zero-delay fast hook — it answers only when every
            # delay is 0.0, with RNG consumption and counters identical to
            # ``decide_batch``, so no :class:`BatchDecisions` (nor its
            # delivered/delay lists) is ever materialized.  Semantics match
            # ``_deliver`` exactly: a receiver deactivated by an earlier
            # delivery of this very batch is still skipped, and stock
            # ``deliver`` routes a non-app payload to ``on_message``
            # regardless of any attached app handler.
            if obs is None:
                res = channel.decide_batch_fast(sender, receivers, now)
            else:
                t0 = obs.clock()
                res = channel.decide_batch_fast(sender, receivers, now)
                obs.record_span("channel.decide_batch_fast", now, t0,
                                {"receivers": len(receivers)})
            if res is not None:
                mask, accepted = res
                live = procs if mask is None else procs_arr[mask].tolist()
                # ``len(live) == accepted``; count down on the (contractually
                # impossible, but parity-preserved) mid-batch deactivation
                # instead of counting up per delivery.
                ndelivered = accepted
                for proc in live:
                    if proc._active:
                        proc.on_message(sender, payload)
                    else:
                        ndelivered -= 1
                self.messages_dropped += len(receivers) - accepted
                self.messages_delivered += ndelivered
                if obs is not None:
                    self._obs_delivered.inc(ndelivered)
                    self._obs_dropped.inc(len(receivers) - accepted)
                return accepted
        if obs is None:
            batch = channel.decide_batch(sender, receivers, now)
        else:
            t0 = obs.clock()
            batch = channel.decide_batch(sender, receivers, now)
            obs.record_span("channel.decide_batch", now, t0,
                            {"receivers": len(receivers)})
        delivered, delays = batch.delivered, batch.delays
        accepted = batch.n_accepted
        if accepted is None:
            accepted = batch.accepted()
        n_receivers = len(receivers)
        if batch.zero_delay:
            # Zero-delay batches from channels without the fast hook (e.g. a
            # collision-free CollisionChannel round) still get the direct
            # dispatch under the same no-trace/no-app/stock conditions.
            if (trace is None and self._stock_deliver
                    and not getattr(payload, "is_app_payload", False)):
                if accepted == n_receivers:
                    live = procs
                elif batch.delivered_array is not None:
                    live = procs_arr[batch.delivered_array].tolist()
                else:
                    live = [procs[i] for i, ok in enumerate(delivered) if ok]
                ndelivered = accepted
                for proc in live:
                    if proc._active:
                        proc.on_message(sender, payload)
                    else:
                        ndelivered -= 1
                self.messages_dropped += n_receivers - accepted
                self.messages_delivered += ndelivered
                if obs is not None:
                    self._obs_delivered.inc(ndelivered)
                    self._obs_dropped.inc(n_receivers - accepted)
                return accepted
        elif accepted == n_receivers and min(delays) > 0:
            # Purely delayed, nothing dropped: one bulk heap insertion.  No
            # callback runs between the decisions and the inserts, so the
            # events get the same contiguous sequence numbers the scalar
            # loop's individual pushes would.
            self.sim.schedule_many(delays, self._deliver,
                                   [(sender, receiver, payload) for receiver in receivers])
            return accepted
        reasons = batch.reasons
        schedule = self.sim.schedule
        deliver = self._deliver
        processes = self._processes
        for i, receiver in enumerate(receivers):
            if not delivered[i]:
                self.messages_dropped += 1
                if obs is not None:
                    self._obs_dropped.inc()
                if trace is not None:
                    trace.record(now, "drop", sender=sender, receiver=receiver,
                                 reason=reasons[i] if reasons is not None else "loss")
                continue
            delay = delays[i]
            if delay <= 0:
                # _deliver inlined (call overhead matters even on this
                # slower path); ``processes.get`` keeps the removed-node
                # guard of the scalar loop.
                proc = processes.get(receiver)
                if proc is None or not proc._active:
                    continue
                self.messages_delivered += 1
                if obs is not None:
                    self._obs_delivered.inc()
                if trace is not None:
                    trace.record(now, "receive", sender=sender, receiver=receiver)
                proc.deliver(sender, payload)
            else:
                schedule(delay, deliver, sender, receiver, payload)
        return accepted

    def _deliver(self, sender: Hashable, receiver: Hashable, payload: Any) -> None:
        proc = self._processes.get(receiver)
        if proc is None or not proc._active:
            return
        self.messages_delivered += 1
        if self._obs_delivered is not None:
            self._obs_delivered.inc()
        if self.trace is not None:
            self.trace.record(self.sim.now, "receive", sender=sender, receiver=receiver)
        proc.deliver(sender, payload)

    # -------------------------------------------------------------- snapshots

    def _cache_key(self) -> Tuple[int, Optional[float]]:
        # max_range() participates so that e.g. growing the largest range of an
        # AsymmetricRangeRadio invalidates snapshots without an explicit call.
        return (self._generation, self.radio.max_range())

    def _symmetric_snapshot(self) -> nx.Graph:
        """Current symmetric-link graph, rebuilt only when the stamp is stale."""
        key = self._cache_key()
        if self._topo_cache is not None and self._topo_cache_key == key:
            return self._topo_cache
        linkstate = self._link_state()
        if linkstate is not None:
            if type(linkstate) is ArrayLinkState:
                graph = self._symmetric_from_arraystate(linkstate)
            else:
                graph = self._symmetric_from_linkstate(linkstate)
            self._topo_cache = graph
            self._topo_cache_key = key
            return graph
        index = self._spatial_index()
        active = self.active_nodes()
        if index is None:
            graph = snapshot_graph(self._positions, self.radio.link_exists, active=active)
        else:
            graph = nx.Graph()
            graph.add_nodes_from(n for n in self._positions if n in active)
            order = self._order
            edges = []
            for u, v in index.pairs_within(self.radio.max_range()):
                if u not in active or v not in active:
                    continue
                if (self.radio.link_exists(u, v, self._positions[u], self._positions[v])
                        and self.radio.link_exists(v, u, self._positions[v], self._positions[u])):
                    edges.append((u, v) if order[u] < order[v] else (v, u))
            # Sorted insertion keeps adjacency iteration order identical to the
            # brute-force build, so downstream graph algorithms replay equally.
            edges.sort(key=lambda e: (order[e[0]], order[e[1]]))
            graph.add_edges_from(edges)
        self._topo_cache = graph
        self._topo_cache_key = key
        return graph

    def _symmetric_from_linkstate(self, linkstate: LinkStateCache) -> nx.Graph:
        """Symmetric snapshot from cached links — zero link re-tests.

        Nodes are visited in insertion order and each adjacency is served
        pre-sorted, so edge insertion order is exactly the lexicographic
        ``(order[u], order[v])`` order of the scan-based builds — downstream
        graph algorithms replay identically.
        """
        active = self.active_nodes()
        graph = nx.Graph()
        graph.add_nodes_from(n for n in self._positions if n in active)
        order = self._order
        for u in graph:
            u_order = order[u]
            for v in linkstate.out_neighbors_sorted(u):
                if order[v] > u_order and v in active and linkstate.has_arc(v, u):
                    graph.add_edge(u, v)
        return graph

    def _active_node_lists(self, store: NodeArrayStore) -> Tuple[List[Hashable], np.ndarray]:
        """(active node ids in insertion order, active mask over store rows)."""
        active_rows = store.active[:store.n]
        row_of = store.row_of
        nodes = [n for n in self._positions if active_rows[row_of[n]]]
        return nodes, active_rows

    def _symmetric_from_arraystate(self, linkstate: ArrayLinkState) -> nx.Graph:
        """Symmetric snapshot straight from the CSR arrays.

        Node and edge insertion order match the scan-based builds exactly
        (insertion-ordered nodes, ``(order[u], order[v])``-sorted edges), so
        downstream graph algorithms replay identically.
        """
        store = linkstate.store
        nodes, active_rows = self._active_node_lists(store)
        graph = nx.Graph()
        graph.add_nodes_from(nodes)
        graph.add_edges_from(linkstate.symmetric_edges(active_rows))
        return graph

    def _directed_from_arraystate(self, linkstate: ArrayLinkState) -> nx.DiGraph:
        """Directed snapshot straight from the CSR arrays."""
        store = linkstate.store
        nodes, active_rows = self._active_node_lists(store)
        graph = nx.DiGraph()
        graph.add_nodes_from(nodes)
        graph.add_edges_from(linkstate.directed_arcs(active_rows))
        return graph

    def _directed_from_linkstate(self, linkstate: LinkStateCache) -> nx.DiGraph:
        """Directed snapshot from cached links — zero link re-tests."""
        active = self.active_nodes()
        graph = nx.DiGraph()
        graph.add_nodes_from(n for n in self._positions if n in active)
        for u in graph:
            graph.add_edges_from((u, v) for v in linkstate.out_neighbors_sorted(u)
                                 if v in active)
        return graph

    def _directed_snapshot(self) -> nx.DiGraph:
        """Current directed-link graph, rebuilt only when the stamp is stale."""
        key = self._cache_key()
        if self._directed_cache is not None and self._directed_cache_key == key:
            return self._directed_cache
        linkstate = self._link_state()
        if linkstate is not None:
            if type(linkstate) is ArrayLinkState:
                graph = self._directed_from_arraystate(linkstate)
            else:
                graph = self._directed_from_linkstate(linkstate)
            self._directed_cache = graph
            self._directed_cache_key = key
            return graph
        index = self._spatial_index()
        active = self.active_nodes()
        graph = nx.DiGraph()
        if index is None:
            # Iterate in insertion order, not set order: snapshot iteration
            # order must not depend on PYTHONHASHSEED (determinism invariant).
            nodes = [n for n in self._positions if n in active]
            graph.add_nodes_from(nodes)
            for u in nodes:
                for v in nodes:
                    if u == v:
                        continue
                    if self.radio.link_exists(u, v, self._positions[u], self._positions[v]):
                        graph.add_edge(u, v)
        else:
            graph.add_nodes_from(n for n in self._positions if n in active)
            order = self._order
            arcs = []
            for u, v in index.pairs_within(self.radio.max_range()):
                if u not in active or v not in active:
                    continue
                if self.radio.link_exists(u, v, self._positions[u], self._positions[v]):
                    arcs.append((u, v))
                if self.radio.link_exists(v, u, self._positions[v], self._positions[u]):
                    arcs.append((v, u))
            arcs.sort(key=lambda a: (order[a[0]], order[a[1]]))
            graph.add_edges_from(arcs)
        self._directed_cache = graph
        self._directed_cache_key = key
        return graph

    def topology(self) -> nx.Graph:
        """Symmetric-link snapshot of the current topology over active nodes.

        The returned graph is a copy; mutating it does not corrupt the cache.
        """
        return self._symmetric_snapshot().copy()

    def directed_topology(self) -> nx.DiGraph:
        """Directed-link snapshot (u -> v iff u is in the vicinity of v)."""
        return self._directed_snapshot().copy()

    def neighbors_of(self, node_id: Hashable) -> Set[Hashable]:
        """Symmetric neighbours of ``node_id`` in the current snapshot.

        Served straight from the link-state cache when available — O(degree)
        per query, no graph construction; a warm symmetric snapshot is reused
        otherwise.
        """
        linkstate = self._link_state()
        if linkstate is not None:
            # The cache mirrors the process table, so membership is settled by
            # the process lookup alone.
            processes = self._processes
            proc = processes.get(node_id)
            if proc is None or not proc._active:
                return set()
            if type(linkstate) is ArrayLinkState:
                store = linkstate.store
                rows = linkstate.out_rows(node_id)
                if rows.size:
                    rows = rows[store.active[rows]]
                return set(store.ids[rows].tolist()) if rows.size else set()
            return {w for w in linkstate.symmetric_neighbors(node_id)
                    if processes[w]._active}
        graph = self._symmetric_snapshot()
        if node_id not in graph:
            return set()
        return set(graph.neighbors(node_id))

    def __repr__(self) -> str:  # pragma: no cover
        return (f"Network(nodes={len(self._processes)}, active={len(self.active_nodes())}, "
                f"sent={self.messages_sent})")
