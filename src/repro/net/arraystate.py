"""Array-native simulation state: SoA node store + CSR link-state.

The object-per-node core caps the simulator at toy sizes: positions live in a
``node -> tuple`` dict, link-state in per-node dicts patched one python
operation at a time, and every broadcast materializes fresh python lists.
This module provides the structure-of-arrays backend behind the existing
:class:`repro.net.network.Network` APIs:

* :class:`NodeArrayStore` — one contiguous ``N x 2`` float64 position array
  plus parallel per-row arrays (insertion order, activity mask, node ids and
  process objects), with a ``node id <-> row`` map.  Rows are recycled by
  swap-with-last on removal, so the arrays stay dense; mobility steps and
  ``Network.set_positions`` become one masked array write.
* :class:`ArrayLinkState` — the symmetric link set of a uniform-link-radius
  radio stored as int32 CSR adjacency (``indptr`` / ``indices`` row arrays),
  rebuilt wholesale by a fully vectorized cell-binning pass whenever the
  position array changed.  Receiver lists, topology snapshots and
  ``neighbors_of`` queries are served from array slices; the indices arena is
  reused across rebuilds so steady-state mobility allocates nothing new.

Exactness story (the ``math.hypot`` contract)
---------------------------------------------
Every scalar path in this repository compares ``math.hypot(dx, dy) <= r``
(inclusive).  Vectorized distance evaluation is *not* bit-identical to that
predicate: element-wise ``np.hypot`` may differ from libm by one ulp on this
platform (measured: ~0.6% of random inputs), and the cheaper squared-distance
comparison ``dx*dx + dy*dy <= r*r`` carries a few ulps of rounding of its
own.  Either error can only flip the inclusive comparison when the distance
lies within a few ulps of ``r``, so the vectorized filter accepts/rejects
outright outside a guard band of relative width ``~1e-12`` around ``r*r``
(four orders of magnitude wider than the worst rounding error) and re-checks
the rare band candidates with ``math.hypot`` itself, on the identical
``dx``/``dy`` float values the scalar paths subtract.  The result is
*provably* the scalar predicate — the regression tests in
``tests/test_arraystate.py`` pin coincident points, exactly-at-range
placements and cell-edge positions, and the 500-node replay matrix holds the
backend to bit-identical runs.

Determinism
-----------
CSR adjacency rows are sorted by node *insertion order* (the same
``Network._order`` counter every scan path sorts by), so receiver lists and
snapshot edge insertion orders are identical to the dict-based
:class:`~repro.net.linkstate.LinkStateCache` and to the brute-force scans —
stochastic channels consume their RNG streams identically whichever backend
produced the candidate list.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Hashable, Iterator, List, Optional, Tuple

import numpy as np

from ..obs import current as _obs_current

__all__ = ["NodeArrayStore", "ArrayLinkState", "HYPOT_GUARD_BAND"]

#: Relative half-width of the re-check band around the link radius.  One ulp
#: of ``r`` is ``~2.2e-16 * r``; the band is ~10'000x wider, so a vectorized
#: ``np.hypot`` that is within a few ulps of libm can never misclassify a
#: candidate outside it.
HYPOT_GUARD_BAND = 1e-12

_INITIAL_CAPACITY = 64


class NodeArrayStore:
    """Structure-of-arrays mirror of the network's node table.

    One row per node; rows are dense (``[0, n)``).  Removal swaps the last
    row into the vacated slot, so row indices are *not* stable across
    removals — consumers must translate through :attr:`row_of` per query (or
    rebuild, as :class:`ArrayLinkState` does).  Insertion order, the
    determinism anchor of every scan path, lives in the :attr:`order` array,
    not in row position.
    """

    __slots__ = ("xy", "order", "active", "ids", "procs", "row_of", "n")

    def __init__(self) -> None:
        cap = _INITIAL_CAPACITY
        #: positions, row-aligned (only ``[:n]`` is meaningful)
        self.xy = np.empty((cap, 2), dtype=np.float64)
        #: insertion-order stamps (``Network._order`` values)
        self.order = np.empty(cap, dtype=np.int64)
        #: activity mask, kept in sync by ``Network.notify_activation_change``
        self.active = np.empty(cap, dtype=bool)
        #: node identifiers (object array for O(1) row -> id gathers)
        self.ids = np.empty(cap, dtype=object)
        #: process objects, row-aligned (delivery loops gather these)
        self.procs = np.empty(cap, dtype=object)
        self.row_of: Dict[Hashable, int] = {}
        self.n = 0

    def __len__(self) -> int:
        return self.n

    def __contains__(self, node: Hashable) -> bool:
        return node in self.row_of

    def _grow(self) -> None:
        cap = max(_INITIAL_CAPACITY, 2 * self.xy.shape[0])
        for name in ("xy", "order", "active", "ids", "procs"):
            old = getattr(self, name)
            shape = (cap,) + old.shape[1:]
            new = np.empty(shape, dtype=old.dtype)
            new[: self.n] = old[: self.n]
            setattr(self, name, new)

    def insert(self, node: Hashable, pos: Tuple[float, float], order: int,
               proc: object, active: bool) -> int:
        """Append a row for ``node``; returns the row index."""
        if node in self.row_of:
            raise ValueError(f"node {node!r} already stored")
        if self.n == self.xy.shape[0]:
            self._grow()
        row = self.n
        self.xy[row, 0] = pos[0]
        self.xy[row, 1] = pos[1]
        self.order[row] = order
        self.active[row] = active
        self.ids[row] = node
        self.procs[row] = proc
        self.row_of[node] = row
        self.n += 1
        return row

    def remove(self, node: Hashable) -> None:
        """Drop ``node``'s row, swapping the last row into its place."""
        row = self.row_of.pop(node)
        last = self.n - 1
        if row != last:
            self.xy[row] = self.xy[last]
            self.order[row] = self.order[last]
            self.active[row] = self.active[last]
            moved = self.ids[last]
            self.ids[row] = moved
            self.procs[row] = self.procs[last]
            self.row_of[moved] = row
        # Release object references so removed processes can be collected.
        self.ids[last] = None
        self.procs[last] = None
        self.n = last

    def update(self, node: Hashable, pos: Tuple[float, float]) -> None:
        """Write one node's position (scalar move)."""
        row = self.row_of[node]
        self.xy[row, 0] = pos[0]
        self.xy[row, 1] = pos[1]

    def write_rows(self, rows: np.ndarray, coords: np.ndarray) -> None:
        """Masked bulk position write: ``xy[rows] = coords`` in one operation."""
        self.xy[rows] = coords

    def set_active(self, node: Hashable, active: bool) -> None:
        row = self.row_of.get(node)
        if row is not None:
            self.active[row] = active

    def position_of(self, node: Hashable) -> Tuple[float, float]:
        row = self.row_of[node]
        return (float(self.xy[row, 0]), float(self.xy[row, 1]))

    # ---------------------------------------------------- shard tile queries

    def x_band_rows(self, x_lo: float, x_hi: float) -> np.ndarray:
        """Row indices whose x-coordinate lies in ``[x_lo, x_hi)``.

        One vectorized comparison over the live rows; ``-inf`` / ``+inf``
        bounds select an open-ended band (the first / last tile of a sharded
        field).  Row indices are only stable until the next removal — use
        them immediately (gather :attr:`ids`) rather than caching.
        """
        xs = self.xy[: self.n, 0]
        return np.nonzero((xs >= x_lo) & (xs < x_hi))[0]

    def interior_rows(self, x_lo: float, x_hi: float, margin: float) -> np.ndarray:
        """Rows of the ``[x_lo, x_hi)`` band that are at least ``margin``
        away from both band edges — the complement of the halo slice.

        A sender here can only reach receivers inside the band (unit-disk
        reach ``margin`` cannot cross an edge), so the sharded delivery path
        may skip per-receiver ownership checks for these rows.
        """
        return self.x_band_rows(x_lo + margin, x_hi - margin)

    def halo_rows(self, x_lo: float, x_hi: float, margin: float) -> np.ndarray:
        """Rows of the ``[x_lo, x_hi)`` band within ``margin`` of either band
        edge — the halo slice whose sends may cross a shard boundary."""
        xs = self.xy[: self.n, 0]
        in_band = (xs >= x_lo) & (xs < x_hi)
        near_edge = (xs < x_lo + margin) | (xs >= x_hi - margin)
        return np.nonzero(in_band & near_edge)[0]


class ArrayLinkState:
    """Symmetric uniform-radius link set as CSR adjacency over array rows.

    Valid only for radios exposing a single inclusive link radius
    (:meth:`repro.net.radio.RadioModel.uniform_link_radius`), for which the
    link relation is symmetric and a pure distance threshold — the regime of
    every stock scenario.  Non-uniform radios keep the dict-based incremental
    cache.

    The CSR arrays are refreshed lazily (first query after any position /
    membership delta).  Two refresh strategies share the same filtered arc
    predicate:

    * **full rebuild** (:meth:`_rebuild`) — one vectorized cell-binning pass
      over every row; the reference implementation and the fallback.
    * **incremental patch** (:meth:`_patch`) — when only a small fraction of
      rows moved since the last build (``mark_row_dirty`` /
      ``mark_rows_dirty``, fed by ``Network`` moves and bulk position
      writes), re-derive just the arcs with a moved endpoint from the cell
      binning cached at the last full rebuild, and splice them into the kept
      remainder of the CSR.  The array analogue of the dict cache's
      per-delta patching (:mod:`repro.net.linkstate`), with the same
      guard-band + scalar ``math.hypot`` re-check — the patched CSR is
      provably byte-identical to what :meth:`_rebuild` would produce (see
      the :meth:`_patch` docstring for the argument).

    Membership changes (insert / remove) and wholesale invalidations always
    force a full rebuild; at high mobility the dirty-fraction threshold does
    the same, because a wholesale vectorized rebuild is then cheaper than
    patch bookkeeping.

    Query results mirror :class:`~repro.net.linkstate.LinkStateCache`
    bit-for-bit: same link membership (guard-banded squared-distance filter,
    see module docstring), same insertion-order sorting of adjacency.
    """

    #: Patch only when at most this fraction of rows is dirty (past it, a
    #: wholesale rebuild is cheaper than per-mover candidate harvesting).
    PATCH_MAX_FRACTION = 0.05
    #: ... but always allow patching a handful of rows, so small worlds
    #: (tests, examples) exercise the patch path too.
    PATCH_MIN_ROWS = 8
    #: Rebuild once the rows whose cached-binning cell went stale (every row
    #: that moved since the last full rebuild) exceed this fraction — the
    #: patch mini-pass degrades toward a full pass as the stale set grows.
    STALE_MAX_FRACTION = 0.25

    def __init__(self, radius: float, store: NodeArrayStore,
                 now_fn: Optional[Callable[[], float]] = None, obs=...,
                 incremental: bool = True):
        self.radius = float(radius)
        self.store = store
        #: serve small position deltas by patching the CSR in place
        self.incremental = bool(incremental)
        #: sim-clock reader for span correlation (the owning network passes
        #: its simulator's ``now``); purely observational.
        self._now_fn = now_fn
        # The network builds this cache lazily, possibly mid-run; it passes
        # its own captured context so the observation scope stays pinned at
        # *network* construction time (Ellipsis = standalone use, capture the
        # current context here).
        self._obs = _obs_current() if obs is ... else obs
        self._dirty = True
        #: row count the current CSR was built for (guards stale row maps)
        self._built_n = 0
        # Reusable arenas: grown geometrically, never shrunk, so steady-state
        # rebuilds write into the same buffers instead of reallocating.
        self._indptr = np.zeros(1, dtype=np.int64)
        self._indices = np.empty(0, dtype=np.int32)
        self._m = 0  # arcs currently stored in the arena
        # Activity-filtered receiver view (token-stamped): parallel id/proc
        # arrays holding only arcs into *active* rows, so per-sender receiver
        # batches are plain slices.  Rebuilt once per token (the network
        # passes its topology generation, which bumps on every activation /
        # position / membership change).
        self._active_token: object = None
        self._recv_indptr: List[int] = [0]
        self._recv_ids = np.empty(0, dtype=object)
        self._recv_procs = np.empty(0, dtype=object)
        self._recv_rows = np.empty(0, dtype=np.int64)
        # Incremental-patch bookkeeping: which rows moved since the last CSR
        # refresh (``_dirty_rows``), which rows' cached-binning cell is
        # outdated though their CSR rows are current (``_stale_rows``), and
        # whether the next refresh must be a full rebuild (``_full`` — set by
        # membership changes and wholesale invalidations).
        self._dirty_rows: set = set()
        self._stale_rows: set = set()
        self._full = True
        # Cell binning cached by the last full rebuild (``None`` = no cache):
        # sorted-slot -> row permutation, unique occupied cell ids with their
        # bucket starts/counts, and the linearization parameters needed to
        # look up an arbitrary cell id after the fact.
        self._bin_perm: Optional[np.ndarray] = None
        self._bin_ucells = np.empty(0, dtype=np.int64)
        self._bin_starts = np.empty(0, dtype=np.int64)
        self._bin_counts = np.empty(0, dtype=np.int64)
        self._bin_cx0 = 0
        self._bin_ymin = 0
        self._bin_ymax = 0
        self._bin_span = 1
        #: refresh-path counters (tests and benchmarks assert which path ran)
        self.rebuild_count = 0
        self.patch_count = 0

    # ------------------------------------------------------------------ deltas

    def mark_dirty(self) -> None:
        """Positions / membership changed wholesale; rebuild on the next query."""
        self._dirty = True
        self._full = True
        self._dirty_rows.clear()

    def mark_row_dirty(self, row: int) -> None:
        """One row's position changed; patch (or rebuild) on the next query."""
        self._dirty = True
        if not self._full:
            self._dirty_rows.add(row)

    def mark_rows_dirty(self, rows: np.ndarray) -> None:
        """A batch of rows' positions changed (bulk mobility write)."""
        if len(rows) == 0:
            return
        self._dirty = True
        if not self._full:
            self._dirty_rows.update(np.asarray(rows).tolist())

    # ----------------------------------------------------------------- rebuild

    def _candidate_pairs(self, xy: np.ndarray, r: float,
                         save: bool = False) -> Tuple[np.ndarray, np.ndarray]:
        """All row pairs (i, j) that could be within ``r``, each exactly once.

        Classic cell-list harvest, fully vectorized: bin rows into cells of
        side ``r`` (k = 1 ring), emit same-cell pairs via rank offsets and
        cross-cell pairs via the four forward neighbour offsets, using
        ragged-range ``repeat``/``cumsum`` arithmetic — no python loop over
        cells or nodes.

        ``save=True`` additionally caches the cell binning (permutation,
        occupied-cell buckets, linearization parameters) for later
        incremental patching against these positions.
        """
        n = xy.shape[0]
        empty = np.empty(0, dtype=np.int64)
        if n < 2:
            return empty, empty
        cells = np.floor(xy / r).astype(np.int64)
        cx, cy = cells[:, 0], cells[:, 1]
        # Linearize with a padded column span so +-1 offsets in y never wrap
        # into a neighbouring x column.
        ymin = cy.min()
        ymax = cy.max()
        cx0 = cx.min()
        span = int(ymax - ymin) + 3
        cid = (cx - cx0 + 1) * span + (cy - ymin + 1)
        sort = np.argsort(cid, kind="stable")
        cid_s = cid[sort]
        # Bucket boundaries over the sorted cell ids.
        boundary = np.empty(n, dtype=bool)
        boundary[0] = True
        np.not_equal(cid_s[1:], cid_s[:-1], out=boundary[1:])
        starts = np.flatnonzero(boundary)
        ucells = cid_s[starts]
        counts = np.diff(np.append(starts, n))
        if save:
            self._bin_perm = sort
            self._bin_ucells = ucells
            self._bin_starts = starts
            self._bin_counts = counts
            self._bin_cx0 = int(cx0)
            self._bin_ymin = int(ymin)
            self._bin_ymax = int(ymax)
            self._bin_span = span
        # bucket index and in-bucket rank of every sorted slot
        bucket_of = np.cumsum(boundary) - 1
        rank = np.arange(n, dtype=np.int64) - starts[bucket_of]

        slots = np.arange(n, dtype=np.int64)
        # One ragged emission for all five range sources per slot (own-bucket
        # tail + four forward neighbour cells): gathering the (lo, length)
        # pairs first and expanding them in a single repeat/cumsum pass keeps
        # the number of full-size numpy dispatches constant instead of
        # per-offset.  The four forward offsets cover every adjacent-cell
        # pair exactly once (k = 1 since cell side == r).
        src_parts = [slots]
        lo_parts = [slots + 1]
        len_parts = [starts[bucket_of] + counts[bucket_of] - slots - 1]
        last = len(ucells) - 1
        for dx, dy in ((0, 1), (1, -1), (1, 0), (1, 1)):
            target = cid_s + dx * span + dy
            pos_c = np.minimum(np.searchsorted(ucells, target), last)
            hit = ucells[pos_c] == target
            src_parts.append(slots)
            lo_parts.append(np.where(hit, starts[pos_c], 0))
            len_parts.append(np.where(hit, counts[pos_c], 0))
        src_slots = np.concatenate(src_parts)
        lo = np.concatenate(lo_parts)
        lengths = np.concatenate(len_parts)
        keep = lengths > 0
        src_slots, lo, lengths = src_slots[keep], lo[keep], lengths[keep]
        total = int(lengths.sum())
        if not total:
            return empty, empty
        first = np.zeros(len(lengths), dtype=np.int64)
        np.cumsum(lengths[:-1], out=first[1:])
        offsets = np.arange(total, dtype=np.int64) - np.repeat(first, lengths)
        slot_i = np.repeat(src_slots, lengths)
        slot_j = lo.repeat(lengths) + offsets
        return sort[slot_i], sort[slot_j]

    def _filter_within(self, xy: np.ndarray, rows_i: np.ndarray,
                       rows_j: np.ndarray, r: float) -> np.ndarray:
        """Boolean mask: ``math.hypot(dx, dy) <= r``, computed vectorized.

        The bulk decision uses squared distances (``dx*dx + dy*dy`` vs
        ``r*r`` — cheaper than ``np.hypot`` and within a few ulps of exact);
        candidates inside the guard band around ``r*r`` (almost always none)
        are re-checked with ``math.hypot`` itself.  ``dx``/``dy`` are the
        identical float subtractions the scalar paths feed ``math.hypot``,
        so the mask equals the scalar predicate bit-for-bit.
        """
        x = np.ascontiguousarray(xy[:, 0])
        y = np.ascontiguousarray(xy[:, 1])
        dx = x[rows_i] - x[rows_j]
        dy = y[rows_i] - y[rows_j]
        sq = dx * dx
        sq += dy * dy
        rsq = r * r
        keep = sq <= rsq
        # Doubled relative band: squared-space errors are at most twice the
        # relative size of distance-space ones.
        tol = rsq * (2.0 * HYPOT_GUARD_BAND)
        band = np.flatnonzero(np.abs(sq - rsq) <= tol)
        if band.size:
            hypot = math.hypot
            for k in band.tolist():
                keep[k] = hypot(dx[k], dy[k]) <= r
        return keep

    def _rebuild(self) -> None:
        obs = self._obs
        t0 = obs.clock() if obs is not None else 0
        store = self.store
        n = store.n
        r = self.radius
        xy = store.xy[:n]
        self._bin_perm = None
        rows_i, rows_j = self._candidate_pairs(xy, r, save=self.incremental)
        if rows_i.size:
            keep = self._filter_within(xy, rows_i, rows_j, r)
            rows_i, rows_j = rows_i[keep], rows_j[keep]
        m = 2 * rows_i.size
        if self._indices.shape[0] < m:
            self._indices = np.empty(max(m, 2 * self._indices.shape[0]),
                                     dtype=np.int32)
        if self._indptr.shape[0] < n + 1:
            self._indptr = np.zeros(max(n + 1, 2 * self._indptr.shape[0]),
                                    dtype=np.int64)
        if m:
            src = np.concatenate([rows_i, rows_j])
            dst = np.concatenate([rows_j, rows_i])
            # Group by source row, receivers sorted by insertion order — the
            # exact sequence every scan path visits.  One fused sort key
            # (src-major, insertion-order-minor) replaces a two-pass lexsort;
            # keys are unique per arc, so the unstable sort is deterministic.
            order = store.order[:n]
            key = src * (int(order.max()) + 1) + order[dst]
            perm = np.argsort(key)
            self._indices[:m] = dst[perm]
            counts = np.bincount(src, minlength=n)
        else:
            counts = np.zeros(n, dtype=np.int64)
        self._indptr[0] = 0
        np.cumsum(counts, out=self._indptr[1:n + 1])
        self._m = m
        self._built_n = n
        self._dirty = False
        self._full = False
        self._dirty_rows.clear()
        self._stale_rows.clear()
        self.rebuild_count += 1
        if obs is not None:
            now = self._now_fn() if self._now_fn is not None else 0.0
            obs.record_span("topology.csr_rebuild", now, t0,
                            {"nodes": n, "arcs": m})

    # ------------------------------------------------------------------- patch

    def _patch_candidates(self, dm: np.ndarray,
                          in_subset: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Candidate pairs (dirty row, unmoved row) from the cached binning.

        For every dirty row, harvest the rows binned (at the last full
        rebuild) into the 3x3 cell block around the dirty row's *current*
        cell.  Rows in ``in_subset`` (dirty or stale — their cached cell is
        outdated) are excluded here and handled by the mini-pass instead.
        Unmoved rows sit exactly where the binning put them, so this covers
        every possible (dirty, unmoved) link: two points within ``r`` always
        fall in adjacent cells of side ``r``.  Cells outside the bbox the
        binning ever occupied hold no rows, so out-of-range neighbour cells
        are simply dropped (sentinel id that matches no bucket).
        """
        r = self.radius
        xy = self.store.xy
        cells = np.floor(xy[dm] / r).astype(np.int64)
        mcx, mcy = cells[:, 0], cells[:, 1]
        span = self._bin_span
        ucells = self._bin_ucells
        last = len(ucells) - 1
        src_parts: List[np.ndarray] = []
        lo_parts: List[np.ndarray] = []
        len_parts: List[np.ndarray] = []
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                ncx = mcx + dx
                ncy = mcy + dy
                # The linearization is injective only for y-cells within one
                # ring of the build-time range; anything else was provably
                # unoccupied at build time (sentinel -1 never matches: every
                # occupied cell id is >= span + 1 > 0).
                valid = (ncy >= self._bin_ymin - 1) & (ncy <= self._bin_ymax + 1)
                target = np.where(
                    valid, (ncx - self._bin_cx0 + 1) * span + (ncy - self._bin_ymin + 1),
                    -1)
                pos_c = np.minimum(np.searchsorted(ucells, target), last)
                hit = ucells[pos_c] == target
                src_parts.append(dm)
                lo_parts.append(np.where(hit, self._bin_starts[pos_c], 0))
                len_parts.append(np.where(hit, self._bin_counts[pos_c], 0))
        src = np.concatenate(src_parts)
        lo = np.concatenate(lo_parts)
        lengths = np.concatenate(len_parts)
        keep = lengths > 0
        src, lo, lengths = src[keep], lo[keep], lengths[keep]
        total = int(lengths.sum())
        empty = np.empty(0, dtype=np.int64)
        if not total:
            return empty, empty
        first = np.zeros(len(lengths), dtype=np.int64)
        np.cumsum(lengths[:-1], out=first[1:])
        offsets = np.arange(total, dtype=np.int64) - np.repeat(first, lengths)
        pair_i = np.repeat(src, lengths)
        pair_j = self._bin_perm[lo.repeat(lengths) + offsets]
        keep_j = ~in_subset[pair_j]
        return pair_i[keep_j], pair_j[keep_j]

    def _patch(self) -> None:
        """Splice the arcs of the dirty rows into the existing CSR.

        Byte-identical to :meth:`_rebuild` by construction:

        * an arc can only appear/disappear if an endpoint moved, i.e. has a
          dirty endpoint — so dropping every old arc with a dirty endpoint
          and re-deriving exactly the pairs with >= 1 dirty endpoint touches
          the complete change set;
        * candidate coverage: (dirty, unmoved) pairs come from the cached
          binning (:meth:`_patch_candidates`); pairs where *both* endpoints
          moved since the last rebuild (dirty or stale — stale rows' CSR is
          current but their cached cell is not) come from a fresh mini
          cell-binning pass over just those rows.  The two sources partition
          the candidate space, so no pair is emitted twice;
        * the exact same guard-banded ``math.hypot`` filter decides
          membership, on the same float subtractions (``hypot`` is symmetric
          under the sign flip of reversing a pair);
        * the merge keeps the CSR invariant — rows grouped by source,
          receivers sorted by insertion order — via the same unique fused
          key the rebuild sorts by, so the merged arrays equal a full
          rebuild's output element for element.
        """
        obs = self._obs
        t0 = obs.clock() if obs is not None else 0
        store = self.store
        n = self._built_n
        r = self.radius
        xy = store.xy[:n]
        dm = np.fromiter(self._dirty_rows, dtype=np.int64,
                         count=len(self._dirty_rows))
        dm.sort()
        dirty_mask = np.zeros(n, dtype=bool)
        dirty_mask[dm] = True
        # Rows whose position postdates the cached binning: dirty now, or
        # moved by an earlier patch (stale).  The mini-pass re-bins these.
        in_subset = dirty_mask.copy()
        if self._stale_rows:
            in_subset[np.fromiter(self._stale_rows, dtype=np.int64,
                                  count=len(self._stale_rows))] = True
        sub_rows = np.flatnonzero(in_subset)
        # (dirty, unmoved) candidates from the cached binning ...
        cand_i, cand_j = self._patch_candidates(dm, in_subset)
        # ... plus (moved, moved) candidates from a mini-pass over the moved
        # subset at current positions, kept only when a dirty row is involved
        # (stale-stale pairs are already correct in the CSR).
        sub_i, sub_j = self._candidate_pairs(xy[sub_rows], r)
        if sub_i.size:
            sub_i = sub_rows[sub_i]
            sub_j = sub_rows[sub_j]
            keep_dirty = dirty_mask[sub_i] | dirty_mask[sub_j]
            sub_i, sub_j = sub_i[keep_dirty], sub_j[keep_dirty]
            cand_i = np.concatenate([cand_i, sub_i])
            cand_j = np.concatenate([cand_j, sub_j])
        if cand_i.size:
            keep = self._filter_within(xy, cand_i, cand_j, r)
            cand_i, cand_j = cand_i[keep], cand_j[keep]
        # Old arcs that survive: neither endpoint dirty.  (Arcs with a stale
        # endpoint were patched current when that endpoint was dirty.)
        m_old = self._m
        src_old = np.repeat(np.arange(n, dtype=np.int64),
                            np.diff(self._indptr[:n + 1]))
        dst_old = self._indices[:m_old].astype(np.int64, copy=False)
        keep_old = ~(dirty_mask[src_old] | dirty_mask[dst_old])
        src_k, dst_k = src_old[keep_old], dst_old[keep_old]
        # New arcs: both directions of every surviving candidate pair.
        src_new = np.concatenate([cand_i, cand_j])
        dst_new = np.concatenate([cand_j, cand_i])
        order = store.order[:n]
        stride = int(order.max()) + 1 if n else 1
        # Kept arcs inherit the CSR's ordering, so their fused keys are
        # already ascending; sort only the (small) new-arc set and merge
        # positionally.  Keys are unique per arc and the two sets are
        # disjoint (kept arcs have no dirty endpoint, new arcs have one).
        key_k = src_k * stride + order[dst_k]
        key_n = src_new * stride + order[dst_new]
        perm = np.argsort(key_n)
        src_new, dst_new, key_n = src_new[perm], dst_new[perm], key_n[perm]
        m = len(src_k) + len(src_new)
        if self._indices.shape[0] < m:
            self._indices = np.empty(max(m, 2 * self._indices.shape[0]),
                                     dtype=np.int32)
        out_pos_new = np.searchsorted(key_k, key_n) + np.arange(len(key_n),
                                                               dtype=np.int64)
        old_mask = np.ones(m, dtype=bool)
        old_mask[out_pos_new] = False
        merged = np.empty(m, dtype=np.int32)
        merged[old_mask] = dst_k
        merged[out_pos_new] = dst_new
        self._indices[:m] = merged
        counts = np.bincount(src_k, minlength=n) + np.bincount(src_new,
                                                               minlength=n)
        self._indptr[0] = 0
        np.cumsum(counts, out=self._indptr[1:n + 1])
        self._m = m
        self._dirty = False
        self._stale_rows.update(self._dirty_rows)
        self._dirty_rows.clear()
        self.patch_count += 1
        if obs is not None:
            now = self._now_fn() if self._now_fn is not None else 0.0
            obs.record_span("topology.csr_patch", now, t0,
                            {"nodes": n, "arcs": m, "dirty": len(dm)})

    def _ensure(self) -> None:
        if not (self._dirty or self._built_n != self.store.n):
            return
        n = self.store.n
        dirty = len(self._dirty_rows)
        if (self._full or not self.incremental or self._bin_perm is None
                or self._built_n != n or dirty == 0
                or dirty > max(self.PATCH_MIN_ROWS, self.PATCH_MAX_FRACTION * n)
                or (dirty + len(self._stale_rows)
                    > self.STALE_MAX_FRACTION * n)):
            self._rebuild()
        else:
            self._patch()

    # ----------------------------------------------------------------- queries

    def out_rows(self, node: Hashable) -> np.ndarray:
        """Link-partner rows of ``node``, sorted by insertion order (a view)."""
        self._ensure()
        row = self.store.row_of[node]
        indptr = self._indptr
        return self._indices[indptr[row]:indptr[row + 1]]

    def out_neighbors_sorted(self, node: Hashable) -> List[Hashable]:
        """Link partners of ``node`` as ids, in insertion order."""
        rows = self.out_rows(node)
        if not rows.size:
            return []
        return self.store.ids[rows].tolist()

    def _refresh_active(self, token: object) -> None:
        """One-shot build of the activity-filtered receiver arrays.

        Filters the whole CSR against the activity mask in a single pass and
        gathers ids / process objects for every kept arc, so per-sender
        receiver batches become plain slices.  ``token`` is the caller's
        change counter (the network's topology generation): it bumps on every
        activation, position or membership delta, so a matching token proves
        the filtered view is current.
        """
        self._ensure()
        n = self._built_n
        m = self._m
        idx = self._indices[:m]
        keep = self.store.active[idx]
        kept = idx[keep]
        # Per-source kept counts via a prefix sum over the keep mask — robust
        # to empty adjacency rows (unlike ``reduceat``).
        csum = np.zeros(m + 1, dtype=np.int64)
        np.cumsum(keep, out=csum[1:])
        # Kept as a python list: per-sender slicing with python ints is
        # measurably faster than with numpy scalars.
        self._recv_indptr = csum[self._indptr[:n + 1]].tolist()
        self._recv_ids = self.store.ids[kept]
        self._recv_procs = self.store.procs[kept]
        self._recv_rows = kept
        self._active_token = token

    def active_receivers(self, node: Hashable,
                         token: object) -> Tuple[List[Hashable], np.ndarray]:
        """(ids, process object array) of the *active* link partners.

        This is the broadcast receiver batch, insertion-ordered.  The first
        query per ``token`` filters the whole adjacency in one vectorized
        pass; every later query is two array slices.  The processes come back
        as an object ndarray so channel decision masks can gather the
        accepted subset in one indexing operation.
        """
        if (token != self._active_token or self._dirty
                or self._built_n != self.store.n):
            self._refresh_active(token)
        row = self.store.row_of[node]
        indptr = self._recv_indptr
        lo = indptr[row]
        hi = indptr[row + 1]
        return self._recv_ids[lo:hi].tolist(), self._recv_procs[lo:hi]

    def active_receiver_rows(self, node: Hashable, token: object) -> np.ndarray:
        """Store-row indices of the batch :meth:`active_receivers` returns.

        Same token discipline and ordering as :meth:`active_receivers`; the
        rows are only stable until the next membership change (callers key
        their caches on the same generation token).  The sharded executor
        gathers per-receiver ownership from these in one indexing operation.
        """
        if (token != self._active_token or self._dirty
                or self._built_n != self.store.n):
            self._refresh_active(token)
        indptr = self._recv_indptr
        row = self.store.row_of[node]
        return self._recv_rows[indptr[row]:indptr[row + 1]]

    def out_neighbors(self, node: Hashable) -> List[Hashable]:
        """Link partners of ``node`` (dict-cache API mirror)."""
        return self.out_neighbors_sorted(node)

    def in_neighbors(self, node: Hashable) -> List[Hashable]:
        """Nodes with a link into ``node`` — the out-partners (symmetric links)."""
        return self.out_neighbors_sorted(node)

    def has_arc(self, u: Hashable, v: Hashable) -> bool:
        """Whether the (symmetric) link ``u -> v`` currently exists."""
        self._ensure()
        row_u = self.store.row_of.get(u)
        row_v = self.store.row_of.get(v)
        if row_u is None or row_v is None:
            return False
        indptr = self._indptr
        return bool((self._indices[indptr[row_u]:indptr[row_u + 1]] == row_v).any())

    def symmetric_neighbors(self, node: Hashable) -> List[Hashable]:
        """Alias of :meth:`out_neighbors_sorted` (uniform links are symmetric)."""
        return self.out_neighbors_sorted(node)

    def symmetric_edges(self, active_rows: np.ndarray) -> List[Tuple[Hashable, Hashable]]:
        """Symmetric edges over ``active_rows``, in canonical snapshot order.

        Returns ``(u, v)`` id tuples with ``order[u] < order[v]``, sorted by
        ``(order[u], order[v])`` — the exact edge insertion sequence of the
        scan-based snapshot builds, produced without touching per-node dicts.
        """
        self._ensure()
        n = self._built_n
        m = self._m
        if not m:
            return []
        store = self.store
        src = np.repeat(np.arange(n, dtype=np.int64),
                        np.diff(self._indptr[:n + 1]))
        dst = self._indices[:m].astype(np.int64, copy=False)
        order = store.order[:n]
        keep = (order[src] < order[dst]) & active_rows[src] & active_rows[dst]
        src, dst = src[keep], dst[keep]
        perm = np.lexsort((order[dst], order[src]))
        src, dst = src[perm], dst[perm]
        return list(zip(store.ids[src].tolist(), store.ids[dst].tolist()))

    def directed_arcs(self, active_rows: np.ndarray) -> List[Tuple[Hashable, Hashable]]:
        """Directed arcs over ``active_rows``, sorted by (order[u], order[v])."""
        self._ensure()
        n = self._built_n
        m = self._m
        if not m:
            return []
        store = self.store
        src = np.repeat(np.arange(n, dtype=np.int64),
                        np.diff(self._indptr[:n + 1]))
        dst = self._indices[:m].astype(np.int64, copy=False)
        keep = active_rows[src] & active_rows[dst]
        src, dst = src[keep], dst[keep]
        order = store.order[:n]
        perm = np.lexsort((order[dst], order[src]))
        src, dst = src[perm], dst[perm]
        return list(zip(store.ids[src].tolist(), store.ids[dst].tolist()))

    def arcs(self) -> Iterator[Tuple[Hashable, Hashable]]:
        """Every directed link, grouped by source row (test/debug helper)."""
        self._ensure()
        store = self.store
        indptr = self._indptr
        for row in range(self._built_n):
            u = store.ids[row]
            for v_row in self._indices[indptr[row]:indptr[row + 1]].tolist():
                yield (u, store.ids[v_row])

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (f"ArrayLinkState(radius={self.radius}, nodes={self.store.n}, "
                f"arcs={self._m}, dirty={self._dirty})")
