"""Wireless network substrate: geometry, radios, channels, network, faults."""

from .channel import (ChannelDecision, ChannelModel, CollisionChannel, LossyChannel,
                      PerfectChannel)
from .faults import FaultInjector
from .geometry import (bounding_box, clamp_to_area, distance, distances_from, grid_positions,
                       line_positions, pairwise_distances, random_positions)
from .network import Network
from .radio import AsymmetricRangeRadio, ProbabilisticDiskRadio, RadioModel, UnitDiskRadio
from .spatialindex import UniformGridIndex
from .topology import (connected_components, distance_matrix_within, group_diameter_ok,
                       group_is_connected, merged_diameter_ok, neighbors_within,
                       snapshot_graph, subgraph_diameter, subgraph_distance)

__all__ = [
    "ChannelDecision", "ChannelModel", "CollisionChannel", "LossyChannel", "PerfectChannel",
    "FaultInjector",
    "bounding_box", "clamp_to_area", "distance", "distances_from", "grid_positions",
    "line_positions", "pairwise_distances", "random_positions",
    "Network",
    "AsymmetricRangeRadio", "ProbabilisticDiskRadio", "RadioModel", "UnitDiskRadio",
    "UniformGridIndex",
    "connected_components", "distance_matrix_within", "group_diameter_ok",
    "group_is_connected", "merged_diameter_ok", "neighbors_within", "snapshot_graph",
    "subgraph_diameter", "subgraph_distance",
]
