"""Dynamic-topology utilities.

The correctness predicates of the Dynamic Group Service (ΠS, ΠM, ΠT) are
defined over *subgraph distances*: the distance between two members of a group
counted only along edges whose both endpoints belong to the group.  This module
implements those graph computations on ``networkx`` snapshots produced by the
network.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Iterable, Mapping, Optional, Sequence, Set, Tuple

import networkx as nx

__all__ = [
    "snapshot_graph",
    "subgraph_distance",
    "subgraph_diameter",
    "group_is_connected",
    "group_diameter_ok",
    "merged_diameter_ok",
    "distance_matrix_within",
    "neighbors_within",
    "connected_components",
]


def snapshot_graph(positions: Mapping[Hashable, Sequence[float]],
                   link_predicate, active: Optional[Set[Hashable]] = None) -> nx.Graph:
    """Build the undirected symmetric-link snapshot of the network.

    An undirected edge ``(u, v)`` exists when *both* directed links exist
    according to ``link_predicate(u, v)`` and ``link_predicate(v, u)``, which is
    the symmetric-link graph GRP effectively operates on (asymmetric links are
    filtered out by the handshake).

    Parameters
    ----------
    positions:
        Mapping node -> (x, y).
    link_predicate:
        Callable ``(sender, receiver, sender_pos, receiver_pos) -> bool``.
    active:
        If given, only these nodes are included.
    """
    graph = nx.Graph()
    nodes = [n for n in positions if active is None or n in active]
    graph.add_nodes_from(nodes)
    for i, u in enumerate(nodes):
        for v in nodes[i + 1:]:
            if (link_predicate(u, v, positions[u], positions[v])
                    and link_predicate(v, u, positions[v], positions[u])):
                graph.add_edge(u, v)
    return graph


def subgraph_distance(graph: nx.Graph, members: Iterable[Hashable],
                      source: Hashable, target: Hashable) -> float:
    """Distance from ``source`` to ``target`` using only edges inside ``members``.

    Returns ``float('inf')`` when no such path exists or when either endpoint is
    not in the graph (this matches the paper's convention d_X(u, v) = +inf).
    """
    members = set(members)
    if source not in graph or target not in graph:
        return float("inf")
    if source not in members or target not in members:
        return float("inf")
    sub = graph.subgraph(members)
    try:
        return float(nx.shortest_path_length(sub, source, target))
    except (nx.NetworkXNoPath, nx.NodeNotFound):
        return float("inf")


def distance_matrix_within(graph: nx.Graph,
                           members: Iterable[Hashable]) -> Dict[Hashable, Dict[Hashable, float]]:
    """All-pairs shortest-path lengths restricted to the ``members`` subgraph."""
    members = [m for m in members if m in graph]
    sub = graph.subgraph(members)
    lengths = dict(nx.all_pairs_shortest_path_length(sub))
    out: Dict[Hashable, Dict[Hashable, float]] = {}
    for u in members:
        row = lengths.get(u, {})
        out[u] = {v: float(row[v]) if v in row else float("inf") for v in members}
    return out


def subgraph_diameter(graph: nx.Graph, members: Iterable[Hashable]) -> float:
    """Diameter of the subgraph induced by ``members``.

    Returns 0 for empty or singleton member sets, ``float('inf')`` when the
    induced subgraph is disconnected or contains nodes absent from the graph.
    """
    members = list(members)
    if len(members) <= 1:
        return 0.0
    if any(m not in graph for m in members):
        return float("inf")
    sub = graph.subgraph(members)
    if not nx.is_connected(sub):
        return float("inf")
    return float(nx.diameter(sub))


def group_is_connected(graph: nx.Graph, members: Iterable[Hashable]) -> bool:
    """Whether the subgraph induced by ``members`` is connected (singletons are)."""
    members = list(members)
    if len(members) <= 1:
        return True
    if any(m not in graph for m in members):
        return False
    return nx.is_connected(graph.subgraph(members))


def group_diameter_ok(graph: nx.Graph, members: Iterable[Hashable], dmax: int) -> bool:
    """ΠS for one group: connected and diameter <= dmax within the group subgraph."""
    return subgraph_diameter(graph, members) <= dmax


def merged_diameter_ok(graph: nx.Graph, group_a: Iterable[Hashable],
                       group_b: Iterable[Hashable], dmax: int) -> bool:
    """Whether merging the two groups would still satisfy the diameter constraint.

    This is the test used by the maximality predicate ΠM: two groups violate
    maximality when their union subgraph has diameter <= dmax.
    """
    union = set(group_a) | set(group_b)
    return subgraph_diameter(graph, union) <= dmax


def neighbors_within(graph: nx.Graph, node: Hashable, hops: int) -> Set[Hashable]:
    """Nodes at distance <= ``hops`` from ``node`` (excluding ``node`` itself)."""
    if node not in graph:
        return set()
    lengths = nx.single_source_shortest_path_length(graph, node, cutoff=hops)
    return {v for v, d in lengths.items() if v != node and d <= hops}


def connected_components(graph: nx.Graph) -> Tuple[FrozenSet[Hashable], ...]:
    """Connected components as a tuple of frozensets (deterministic order)."""
    comps = [frozenset(c) for c in nx.connected_components(graph)]
    return tuple(sorted(comps, key=lambda c: sorted(map(repr, c))))
