"""Highway (VANET) mobility.

The paper motivates the Dynamic Group Service with vehicular networks:
vehicles travelling on a highway form convoys (groups) that grow, split when
too stretched, and merge again thanks to relative speeds.  This model places
vehicles on a multi-lane one-dimensional road:

* each lane has a nominal speed; vehicles keep a per-vehicle speed drawn around
  their lane's nominal speed;
* vehicles optionally change lane at random (which changes their speed and
  therefore the convoy composition over time);
* the road wraps around (ring road) so density stays constant, or vehicles can
  be configured to drive off the end and re-enter at the start.

Positions are 2-D: ``x`` along the road, ``y`` the lane offset — so the usual
unit-disk radio applies unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, Mapping, Optional, Tuple

import numpy as np

from .base import MobilityModel

__all__ = ["HighwayMobility"]

Point = Tuple[float, float]


@dataclass
class _VehicleState:
    lane: int
    speed: float


class HighwayMobility(MobilityModel):
    """Multi-lane highway with per-lane nominal speeds.

    Parameters
    ----------
    road_length:
        Length of the road (positions wrap around it).
    lane_count:
        Number of parallel lanes.
    lane_spacing:
        Lateral distance between two adjacent lanes.
    lane_speeds:
        Nominal speed of each lane (length must equal ``lane_count``); defaults
        to evenly spaced speeds between ``base_speed`` and ``base_speed * 1.5``.
    base_speed:
        Used to derive default lane speeds.
    speed_jitter:
        Relative jitter applied to each vehicle's personal speed.
    lane_change_probability:
        Probability, per step, that a vehicle changes to an adjacent lane.
    """

    def __init__(self, road_length: float, lane_count: int = 2, lane_spacing: float = 5.0,
                 lane_speeds: Optional[Iterable[float]] = None, base_speed: float = 20.0,
                 speed_jitter: float = 0.1, lane_change_probability: float = 0.02,
                 step_interval: float = 1.0, rng: Optional[np.random.Generator] = None):
        super().__init__(step_interval=step_interval, rng=rng)
        if road_length <= 0:
            raise ValueError("road_length must be positive")
        if lane_count < 1:
            raise ValueError("lane_count must be >= 1")
        if not 0.0 <= lane_change_probability <= 1.0:
            raise ValueError("lane_change_probability must be in [0, 1]")
        self.road_length = float(road_length)
        self.lane_count = int(lane_count)
        self.lane_spacing = float(lane_spacing)
        if lane_speeds is None:
            if lane_count == 1:
                lane_speeds = [base_speed]
            else:
                lane_speeds = list(np.linspace(base_speed, base_speed * 1.5, lane_count))
        self.lane_speeds = [float(s) for s in lane_speeds]
        if len(self.lane_speeds) != self.lane_count:
            raise ValueError("lane_speeds must have one entry per lane")
        self.speed_jitter = float(speed_jitter)
        self.lane_change_probability = float(lane_change_probability)
        self._states: Dict[Hashable, _VehicleState] = {}

    # -------------------------------------------------------------- internals

    def _draw_speed(self, lane: int) -> float:
        nominal = self.lane_speeds[lane]
        if self.speed_jitter == 0:
            return nominal
        low = nominal * (1 - self.speed_jitter)
        high = nominal * (1 + self.speed_jitter)
        return float(self._rng.uniform(low, high))

    def _state_of(self, node: Hashable, position: Point) -> _VehicleState:
        state = self._states.get(node)
        if state is None:
            lane = int(round(position[1] / self.lane_spacing)) if self.lane_spacing > 0 else 0
            lane = min(max(lane, 0), self.lane_count - 1)
            state = _VehicleState(lane=lane, speed=self._draw_speed(lane))
            self._states[node] = state
        return state

    # ------------------------------------------------------------------- API

    def initial_positions(self, node_ids, spacing: float = 30.0,
                          **kwargs) -> Dict[Hashable, Point]:
        """Place vehicles along the road with the given nominal spacing, lanes interleaved."""
        positions: Dict[Hashable, Point] = {}
        for index, node in enumerate(node_ids):
            lane = index % self.lane_count
            x = (index * spacing) % self.road_length
            x += float(self._rng.uniform(-spacing / 4, spacing / 4))
            positions[node] = (x % self.road_length, lane * self.lane_spacing)
            self._states[node] = _VehicleState(lane=lane, speed=self._draw_speed(lane))
        return positions

    def step(self, positions: Mapping[Hashable, Point], dt: float) -> Dict[Hashable, Point]:
        new_positions: Dict[Hashable, Point] = {}
        for node, position in positions.items():
            state = self._state_of(node, position)
            if self.lane_count > 1 and self._rng.random() < self.lane_change_probability:
                delta = 1 if self._rng.random() < 0.5 else -1
                new_lane = min(max(state.lane + delta, 0), self.lane_count - 1)
                if new_lane != state.lane:
                    state.lane = new_lane
                    state.speed = self._draw_speed(new_lane)
            x = (position[0] + state.speed * dt) % self.road_length
            y = state.lane * self.lane_spacing
            new_positions[node] = (x, y)
        return new_positions

    def lane_of(self, node: Hashable) -> Optional[int]:
        """Current lane of ``node`` (``None`` before its first step)."""
        state = self._states.get(node)
        return state.lane if state is not None else None
