"""Static (no-movement) mobility model, used by the fixed-topology experiments."""

from __future__ import annotations

from typing import Dict, Hashable, Mapping, Tuple

from .base import MobilityModel

__all__ = ["StaticMobility"]

Point = Tuple[float, float]


class StaticMobility(MobilityModel):
    """Positions never change."""

    def step(self, positions: Mapping[Hashable, Point], dt: float) -> Dict[Hashable, Point]:
        return dict(positions)
