"""Mobility substrate: synthetic movement models and churn schedules."""

from .base import MobilityModel
from .churn import ChurnEvent, ChurnSchedule, random_churn_schedule
from .highway import HighwayMobility
from .random_walk import RandomWalkMobility
from .random_waypoint import RandomWaypointMobility
from .rpgm import ReferencePointGroupMobility
from .sparse_waypoint import SparseWaypointMobility
from .static import StaticMobility

__all__ = [
    "MobilityModel",
    "ChurnEvent",
    "ChurnSchedule",
    "random_churn_schedule",
    "HighwayMobility",
    "RandomWalkMobility",
    "RandomWaypointMobility",
    "ReferencePointGroupMobility",
    "SparseWaypointMobility",
    "StaticMobility",
]
