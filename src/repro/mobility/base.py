"""Mobility model interface.

A mobility model transforms the node-position mapping at fixed time intervals.
Models are deliberately stateless with respect to the network: the
:class:`repro.net.network.Network` owns the positions and calls
:meth:`MobilityModel.step` periodically (every ``step_interval`` simulated
seconds).  Models keep per-node kinematic state (destination, speed, lane…)
internally, keyed by node id, and create it lazily the first time they see a
node — so nodes may join or leave at any time.

Delta notification contract
---------------------------
The network maintains its spatial index, array store and link-state caches by
*diffing* each step's result against the current positions: a node whose
returned position equals its current one costs nothing downstream.  With the
array backend the whole step lands as one bulk comparison-and-masked-write
into the contiguous position array (``Network._apply_position_updates``);
the scalar fallback compares per node.  Either way, models signal "this node
did not move" simply by echoing the input position unchanged (pass the same
tuple through, as the stock models do for paused waypoint nodes and for
:class:`~repro.mobility.static.StaticMobility`) rather than recomputing a
float that might differ in the last ulp — the cheapest possible delta
notification, and one that cannot desynchronize.  :func:`moved_nodes`
implements the same comparison for tests and tooling (the network itself no
longer calls it; the bulk write subsumes it).
"""

from __future__ import annotations

from typing import Dict, Hashable, Mapping, Optional, Tuple

import numpy as np

__all__ = ["MobilityModel", "moved_nodes"]

Point = Tuple[float, float]


def moved_nodes(before: Mapping[Hashable, Point],
                after: Mapping[Hashable, Point]) -> Dict[Hashable, Point]:
    """The subset of ``after`` whose position differs from ``before``.

    Values are normalized to float tuples on both sides, so the comparison is
    by coordinate value whatever numeric types the model emitted.  Nodes
    absent from ``before`` (new arrivals carried by the model) count as
    moved.  This is the exact comparison
    :meth:`repro.net.network.Network.start_mobility` applies when mirroring a
    mobility step into its spatial index and link-state cache.
    """
    moved: Dict[Hashable, Point] = {}
    for node, pos in after.items():
        new = (float(pos[0]), float(pos[1]))
        old = before.get(node)
        if old is None or (float(old[0]), float(old[1])) != new:
            moved[node] = new
    return moved


class MobilityModel:
    """Base class for all mobility models."""

    def __init__(self, step_interval: float = 1.0,
                 rng: Optional[np.random.Generator] = None):
        if step_interval <= 0:
            raise ValueError("step_interval must be positive")
        self.step_interval = float(step_interval)
        self._rng = rng if rng is not None else np.random.default_rng()

    @property
    def rng(self) -> np.random.Generator:
        """Random stream of the model."""
        return self._rng

    def set_rng(self, rng: np.random.Generator) -> None:
        """Inject the random stream (called by :func:`repro.core.protocol.build_grp_network`)."""
        self._rng = rng

    # ------------------------------------------------------------------- API

    def initial_positions(self, node_ids, **kwargs) -> Dict[Hashable, Point]:
        """Optional helper producing initial positions consistent with the model."""
        raise NotImplementedError(f"{type(self).__name__} does not provide initial positions")

    def step(self, positions: Mapping[Hashable, Point], dt: float) -> Dict[Hashable, Point]:
        """Return the new positions after ``dt`` simulated seconds."""
        raise NotImplementedError
