"""Mobility model interface.

A mobility model transforms the node-position mapping at fixed time intervals.
Models are deliberately stateless with respect to the network: the
:class:`repro.net.network.Network` owns the positions and calls
:meth:`MobilityModel.step` periodically (every ``step_interval`` simulated
seconds).  Models keep per-node kinematic state (destination, speed, lane…)
internally, keyed by node id, and create it lazily the first time they see a
node — so nodes may join or leave at any time.
"""

from __future__ import annotations

from typing import Dict, Hashable, Mapping, Optional, Tuple

import numpy as np

__all__ = ["MobilityModel"]

Point = Tuple[float, float]


class MobilityModel:
    """Base class for all mobility models."""

    def __init__(self, step_interval: float = 1.0,
                 rng: Optional[np.random.Generator] = None):
        if step_interval <= 0:
            raise ValueError("step_interval must be positive")
        self.step_interval = float(step_interval)
        self._rng = rng if rng is not None else np.random.default_rng()

    @property
    def rng(self) -> np.random.Generator:
        """Random stream of the model."""
        return self._rng

    def set_rng(self, rng: np.random.Generator) -> None:
        """Inject the random stream (called by :func:`repro.core.protocol.build_grp_network`)."""
        self._rng = rng

    # ------------------------------------------------------------------- API

    def initial_positions(self, node_ids, **kwargs) -> Dict[Hashable, Point]:
        """Optional helper producing initial positions consistent with the model."""
        raise NotImplementedError(f"{type(self).__name__} does not provide initial positions")

    def step(self, positions: Mapping[Hashable, Point], dt: float) -> Dict[Hashable, Point]:
        """Return the new positions after ``dt`` simulated seconds."""
        raise NotImplementedError
