"""Sparse random waypoint mobility: only a fixed fraction of nodes move.

Mega-world workloads (:mod:`repro.scenarios`' ``city_scale_mobile``) model a
mostly parked urban field where a small share of vehicles circulate.  The
model picks its mover subset once — a deterministic draw over the node ids in
sorted order — and thereafter steps exactly those nodes with the parent
random-waypoint kinematics, echoing every other node's position tuple
unchanged.  The echo is load-bearing twice over: it is the delta-notification
contract of :mod:`repro.mobility.base` (unmoved nodes cost nothing
downstream), and it keeps the per-step dirty-row set small enough that the
array link-state's incremental CSR patch stays engaged
(:class:`repro.net.arraystate.ArrayLinkState`).
"""

from __future__ import annotations

from typing import Dict, Hashable, Mapping, Optional, Tuple

import numpy as np

from .random_waypoint import RandomWaypointMobility

__all__ = ["SparseWaypointMobility"]

Point = Tuple[float, float]


class SparseWaypointMobility(RandomWaypointMobility):
    """Random waypoint restricted to a ``mover_fraction`` subset of nodes.

    Parameters are those of :class:`RandomWaypointMobility` plus
    ``mover_fraction`` in ``(0, 1]`` — the share of nodes that move (at
    least one).  The subset is drawn on the first :meth:`step` from the node
    ids sorted by string form, so it is a pure function of the rng state and
    the census, independent of dict iteration order.
    """

    def __init__(self, area: Tuple[float, float], min_speed: float,
                 max_speed: float, mover_fraction: float = 0.01,
                 pause_time: float = 0.0, step_interval: float = 1.0,
                 rng: Optional[np.random.Generator] = None):
        super().__init__(area, min_speed, max_speed, pause_time=pause_time,
                         step_interval=step_interval, rng=rng)
        if not 0.0 < mover_fraction <= 1.0:
            raise ValueError("mover_fraction must be in (0, 1]")
        self.mover_fraction = float(mover_fraction)
        self._movers: Optional[frozenset] = None

    def _select_movers(self, positions: Mapping[Hashable, Point]) -> frozenset:
        nodes = sorted(positions, key=str)
        count = max(1, int(round(self.mover_fraction * len(nodes))))
        count = min(count, len(nodes))
        chosen = self._rng.choice(len(nodes), size=count, replace=False)
        return frozenset(nodes[int(index)] for index in chosen)

    def step(self, positions: Mapping[Hashable, Point],
             dt: float) -> Dict[Hashable, Point]:
        if self._movers is None:
            self._movers = self._select_movers(positions)
        movers = self._movers
        # Step only the mover sub-mapping (in the full mapping's iteration
        # order, so lazily created waypoint states draw rng in a stable
        # order), then echo everyone else's tuple through untouched.
        stepped = super().step(
            {node: pos for node, pos in positions.items() if node in movers}, dt)
        return {node: (stepped[node] if node in movers else pos)
                for node, pos in positions.items()}
