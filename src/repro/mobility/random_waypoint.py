"""Random waypoint mobility.

The classic MANET model: each node picks a uniform random destination in the
area, travels towards it at a uniform random speed, optionally pauses, then
picks a new destination.  Low speeds produce topologies where the paper's
topological predicate ΠT holds most of the time (experiment E3); high speeds
break it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Hashable, Mapping, Optional, Tuple

import numpy as np

from repro.net.geometry import random_positions

from .base import MobilityModel

__all__ = ["RandomWaypointMobility"]

Point = Tuple[float, float]


@dataclass
class _NodeState:
    destination: Point
    speed: float
    pause_remaining: float = 0.0


class RandomWaypointMobility(MobilityModel):
    """Random waypoint over a rectangular area.

    Parameters
    ----------
    area:
        ``(width, height)`` of the simulation area.
    min_speed, max_speed:
        Uniform speed bounds (distance units per simulated second).
    pause_time:
        Pause duration at each waypoint.
    """

    def __init__(self, area: Tuple[float, float], min_speed: float, max_speed: float,
                 pause_time: float = 0.0, step_interval: float = 1.0,
                 rng: Optional[np.random.Generator] = None):
        super().__init__(step_interval=step_interval, rng=rng)
        if min_speed < 0 or max_speed < min_speed:
            raise ValueError("need 0 <= min_speed <= max_speed")
        if pause_time < 0:
            raise ValueError("pause_time must be non-negative")
        self.area = (float(area[0]), float(area[1]))
        self.min_speed = float(min_speed)
        self.max_speed = float(max_speed)
        self.pause_time = float(pause_time)
        self._states: Dict[Hashable, _NodeState] = {}

    # -------------------------------------------------------------- internals

    def _new_destination(self) -> Point:
        return (float(self._rng.uniform(0, self.area[0])),
                float(self._rng.uniform(0, self.area[1])))

    def _new_speed(self) -> float:
        if self.max_speed == self.min_speed:
            return self.min_speed
        return float(self._rng.uniform(self.min_speed, self.max_speed))

    def _state_of(self, node: Hashable) -> _NodeState:
        state = self._states.get(node)
        if state is None:
            state = _NodeState(destination=self._new_destination(), speed=self._new_speed())
            self._states[node] = state
        return state

    # ------------------------------------------------------------------- API

    def initial_positions(self, node_ids, **kwargs) -> Dict[Hashable, Point]:
        return random_positions(node_ids, self.area, self._rng)

    def step(self, positions: Mapping[Hashable, Point], dt: float) -> Dict[Hashable, Point]:
        new_positions: Dict[Hashable, Point] = {}
        for node, position in positions.items():
            state = self._state_of(node)
            if state.pause_remaining > 0:
                state.pause_remaining = max(0.0, state.pause_remaining - dt)
                new_positions[node] = position
                continue
            dx = state.destination[0] - position[0]
            dy = state.destination[1] - position[1]
            remaining = math.hypot(dx, dy)
            travel = state.speed * dt
            if remaining <= travel or remaining == 0.0:
                new_positions[node] = state.destination
                state.pause_remaining = self.pause_time
                state.destination = self._new_destination()
                state.speed = self._new_speed()
            else:
                ratio = travel / remaining
                new_positions[node] = (position[0] + dx * ratio, position[1] + dy * ratio)
        return new_positions
