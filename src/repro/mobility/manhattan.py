"""Manhattan-grid (urban street) mobility.

Nodes move along the streets of a regular city grid: horizontal and vertical
streets spaced ``block_size`` apart over a square area.  A node travels at
constant speed along its current street and, on reaching an intersection,
keeps going straight or turns onto the crossing street according to the
classic Manhattan-model probabilities (turns split evenly between left and
right).  At the area boundary the node makes a U-turn.

Compared with random waypoint, the grid correlates trajectories — nodes
funnel down the same streets, meet at intersections and part at the next one
— which produces the burst-merge/burst-split group dynamics typical of urban
VANET traces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Mapping, Optional, Tuple

import numpy as np

from .base import MobilityModel

__all__ = ["ManhattanGridMobility"]

Point = Tuple[float, float]


@dataclass
class _WalkerState:
    axis: int        # 0: moving along x (horizontal street), 1: along y
    direction: int   # +1 or -1 along the axis


class ManhattanGridMobility(MobilityModel):
    """Constant-speed movement constrained to a regular street grid.

    Parameters
    ----------
    area:
        Side length of the square city.  The street grid spans the largest
        multiple of ``block_size`` that fits (``extent``); nodes live on
        ``[0, extent]`` on both axes, so every border coordinate is a real
        street and movement is continuous.
    block_size:
        Distance between two parallel streets; intersections sit at integer
        multiples of it.
    speed:
        Travel speed (distance units per simulated second).
    turn_probability:
        Probability of turning onto the crossing street at an intersection
        (split evenly between the two turn directions); with the remaining
        probability the node continues straight.
    """

    def __init__(self, area: float, block_size: float, speed: float,
                 turn_probability: float = 0.5, step_interval: float = 1.0,
                 rng: Optional[np.random.Generator] = None):
        super().__init__(step_interval=step_interval, rng=rng)
        if area <= 0 or block_size <= 0:
            raise ValueError("area and block_size must be positive")
        if block_size > area:
            raise ValueError("block_size must not exceed the area side")
        if speed < 0:
            raise ValueError("speed must be non-negative")
        if not 0.0 <= turn_probability <= 1.0:
            raise ValueError("turn_probability must be in [0, 1]")
        self.area = float(area)
        self.block_size = float(block_size)
        #: Side of the actual street grid: the largest block multiple inside
        #: ``area``.  All placement and border logic uses it, so a node can
        #: never sit on a coordinate with no street to turn onto.
        self.extent = int(self.area / self.block_size) * self.block_size
        self.speed = float(speed)
        self.turn_probability = float(turn_probability)
        self._states: Dict[Hashable, _WalkerState] = {}

    # -------------------------------------------------------------- internals

    @property
    def _street_count(self) -> int:
        """Number of parallel streets per axis (street 0 sits on the border)."""
        return int(self.extent / self.block_size) + 1

    def _snap(self, value: float) -> float:
        """Coordinate of the street line closest to ``value``."""
        street = round(value / self.block_size)
        street = min(max(street, 0), self._street_count - 1)
        return street * self.block_size

    def _state_of(self, node: Hashable) -> _WalkerState:
        state = self._states.get(node)
        if state is None:
            state = _WalkerState(axis=int(self._rng.integers(0, 2)),
                                 direction=1 if self._rng.random() < 0.5 else -1)
            self._states[node] = state
        return state

    def _turn(self, state: _WalkerState) -> None:
        """Apply one intersection decision."""
        draw = self._rng.random()
        if draw < self.turn_probability:
            # Turn onto the crossing street; the second draw picks the side.
            state.axis = 1 - state.axis
            state.direction = 1 if self._rng.random() < 0.5 else -1
        # Going straight keeps axis and direction; U-turns at the border are
        # forced afterwards whatever was decided here.

    # ------------------------------------------------------------------- API

    def initial_positions(self, node_ids, **kwargs) -> Dict[Hashable, Point]:
        """Place every node uniformly at random along a random street."""
        positions: Dict[Hashable, Point] = {}
        for node in node_ids:
            state = self._state_of(node)
            along = float(self._rng.uniform(0, self.extent))
            across = self._snap(float(self._rng.uniform(0, self.extent)))
            if state.axis == 0:
                positions[node] = (along, across)
            else:
                positions[node] = (across, along)
        return positions

    def step(self, positions: Mapping[Hashable, Point], dt: float) -> Dict[Hashable, Point]:
        new_positions: Dict[Hashable, Point] = {}
        for node, position in positions.items():
            state = self._state_of(node)
            # Re-snap the off-axis coordinate: nodes the model never placed
            # (e.g. added mid-run) may sit between streets.
            if state.axis == 0:
                along, across = position[0], self._snap(position[1])
            else:
                along, across = position[1], self._snap(position[0])
            remaining = self.speed * dt
            while remaining > 1e-12:
                target = self._next_intersection(along, state.direction)
                gap = abs(target - along)
                if gap <= 1e-12:
                    # Pressed against a border (degenerate float state): snap
                    # exactly onto it and bounce inward, without consuming an
                    # intersection decision.  Deciding by the nearer border
                    # (not by `along <= 0`) matters: a coordinate a hair above
                    # 0 must still bounce upward or the loop never progresses.
                    if along <= self.extent / 2:
                        along, state.direction = 0.0, 1
                    else:
                        along, state.direction = self.extent, -1
                    continue
                if gap > remaining:
                    along += state.direction * remaining
                    remaining = 0.0
                    break
                along = target
                remaining -= gap
                at_border = along <= 0.0 or along >= self.extent
                previous_axis = state.axis
                self._turn(state)
                if state.axis != previous_axis:
                    # The travel coordinate and the street coordinate swap.
                    along, across = across, along
                    at_border = along <= 0.0 or along >= self.extent
                if at_border:
                    if along <= 0.0:
                        state.direction = 1
                    elif along >= self.extent:
                        state.direction = -1
            along = min(max(along, 0.0), self.extent)
            if state.axis == 0:
                new_positions[node] = (along, across)
            else:
                new_positions[node] = (across, along)
        return new_positions

    def _next_intersection(self, along: float, direction: int) -> float:
        """Coordinate of the next intersection strictly ahead of ``along``."""
        step = self.block_size
        if direction > 0:
            nxt = (int(along / step) + 1) * step
            if nxt - along < 1e-12:
                nxt += step
            return min(nxt, self.extent)
        nxt = (int(np.ceil(along / step)) - 1) * step
        if along - nxt < 1e-12:
            nxt -= step
        return max(nxt, 0.0)
