"""Random walk (random direction) mobility with reflection at the area borders."""

from __future__ import annotations

import math
from typing import Dict, Hashable, Mapping, Optional, Tuple

import numpy as np

from repro.net.geometry import random_positions

from .base import MobilityModel

__all__ = ["RandomWalkMobility"]

Point = Tuple[float, float]


class RandomWalkMobility(MobilityModel):
    """Each node moves at constant speed and redraws its heading every ``turn_interval``.

    Positions are reflected on the rectangle borders, keeping nodes inside the
    area without the density bias of wrapping.
    """

    def __init__(self, area: Tuple[float, float], speed: float, turn_interval: float = 5.0,
                 step_interval: float = 1.0, rng: Optional[np.random.Generator] = None):
        super().__init__(step_interval=step_interval, rng=rng)
        if speed < 0:
            raise ValueError("speed must be non-negative")
        if turn_interval <= 0:
            raise ValueError("turn_interval must be positive")
        self.area = (float(area[0]), float(area[1]))
        self.speed = float(speed)
        self.turn_interval = float(turn_interval)
        self._headings: Dict[Hashable, float] = {}
        self._until_turn: Dict[Hashable, float] = {}

    def initial_positions(self, node_ids, **kwargs) -> Dict[Hashable, Point]:
        return random_positions(node_ids, self.area, self._rng)

    def _heading_of(self, node: Hashable) -> float:
        if node not in self._headings:
            self._headings[node] = float(self._rng.uniform(0, 2 * math.pi))
            self._until_turn[node] = self.turn_interval
        return self._headings[node]

    def _reflect(self, value: float, bound: float) -> float:
        if bound <= 0:
            return 0.0
        period = 2 * bound
        value = value % period
        return value if value <= bound else period - value

    def step(self, positions: Mapping[Hashable, Point], dt: float) -> Dict[Hashable, Point]:
        new_positions: Dict[Hashable, Point] = {}
        for node, position in positions.items():
            heading = self._heading_of(node)
            self._until_turn[node] -= dt
            if self._until_turn[node] <= 0:
                heading = float(self._rng.uniform(0, 2 * math.pi))
                self._headings[node] = heading
                self._until_turn[node] = self.turn_interval
            x = position[0] + math.cos(heading) * self.speed * dt
            y = position[1] + math.sin(heading) * self.speed * dt
            new_positions[node] = (self._reflect(x, self.area[0]),
                                   self._reflect(y, self.area[1]))
        return new_positions
