"""Node churn schedules.

The paper's model lets nodes be *active* or *inactive*; appearance and
disappearance of nodes are transient faults the protocol must absorb.
:class:`ChurnSchedule` drives the ``activate``/``deactivate`` transitions of a
:class:`repro.net.network.Network`, either from an explicit schedule or from a
random on/off process.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, List, Optional, Sequence

import numpy as np

from repro.net.network import Network

__all__ = ["ChurnEvent", "ChurnSchedule", "random_churn_schedule"]


@dataclass(frozen=True)
class ChurnEvent:
    """One planned activation change."""

    time: float
    node_id: Hashable
    active: bool


class ChurnSchedule:
    """Applies a list of :class:`ChurnEvent` to a network through the simulator."""

    def __init__(self, events: Sequence[ChurnEvent]):
        self.events: List[ChurnEvent] = sorted(events, key=lambda e: e.time)
        self.applied = 0

    def install(self, network: Network) -> None:
        """Schedule every event on the network's simulator."""
        for event in self.events:
            network.sim.schedule_at(event.time, self._apply, network, event)

    def _apply(self, network: Network, event: ChurnEvent) -> None:
        if event.node_id not in network.processes:
            return
        if event.active:
            network.activate_node(event.node_id)
        else:
            network.deactivate_node(event.node_id)
        self.applied += 1


def random_churn_schedule(node_ids: Sequence[Hashable], duration: float,
                          off_rate: float, mean_off_time: float,
                          rng: Optional[np.random.Generator] = None,
                          start: float = 0.0) -> ChurnSchedule:
    """Generate a random on/off churn schedule.

    Each node independently switches off with exponential inter-arrival times of
    mean ``1 / off_rate`` and stays off for an exponential duration of mean
    ``mean_off_time``.

    Parameters
    ----------
    node_ids:
        Nodes subject to churn.
    duration:
        Horizon of the schedule (simulated seconds).
    off_rate:
        Rate (per simulated second) at which an active node switches off.
    mean_off_time:
        Mean duration of an off period.
    rng:
        Random stream.
    start:
        Time before which no churn event is generated (lets the protocol
        stabilize first).
    """
    if off_rate < 0 or mean_off_time <= 0:
        raise ValueError("off_rate must be >= 0 and mean_off_time > 0")
    rng = rng if rng is not None else np.random.default_rng()
    events: List[ChurnEvent] = []
    for node in node_ids:
        time = start
        while True:
            if off_rate == 0:
                break
            time += float(rng.exponential(1.0 / off_rate))
            if time >= duration:
                break
            events.append(ChurnEvent(time=time, node_id=node, active=False))
            time += float(rng.exponential(mean_off_time))
            if time >= duration:
                break
            events.append(ChurnEvent(time=time, node_id=node, active=True))
    return ChurnSchedule(events)
