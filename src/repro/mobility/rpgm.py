"""Reference Point Group Mobility (RPGM).

Nodes are organised in mobility groups; each group has a logical centre that
follows a random-waypoint trajectory, and members wander around their group
centre within a bounded radius.  This creates exactly the situation GRP is
designed for: members of the same mobility group stay within a small graph
distance of each other (ΠT holds inside groups), while different groups drift
apart or cross each other (mergers / splits).
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from .base import MobilityModel
from .random_waypoint import RandomWaypointMobility

__all__ = ["ReferencePointGroupMobility"]

Point = Tuple[float, float]


class ReferencePointGroupMobility(MobilityModel):
    """RPGM over a rectangular area.

    Parameters
    ----------
    area:
        ``(width, height)`` of the simulation area.
    groups:
        Sequence of node-id collections; each collection is one mobility group.
    group_speed:
        Speed of the group centres.
    member_radius:
        Maximum distance of a member from its group centre.
    member_speed:
        Speed of the members' local wandering.
    """

    def __init__(self, area: Tuple[float, float], groups: Sequence[Iterable[Hashable]],
                 group_speed: float = 5.0, member_radius: float = 20.0,
                 member_speed: float = 2.0, step_interval: float = 1.0,
                 rng: Optional[np.random.Generator] = None):
        super().__init__(step_interval=step_interval, rng=rng)
        self.area = (float(area[0]), float(area[1]))
        self.groups: List[List[Hashable]] = [list(group) for group in groups]
        if not self.groups:
            raise ValueError("at least one mobility group is required")
        self.member_radius = float(member_radius)
        self.member_speed = float(member_speed)
        self._group_of: Dict[Hashable, int] = {}
        for index, members in enumerate(self.groups):
            for member in members:
                self._group_of[member] = index
        self._centre_model = RandomWaypointMobility(area, group_speed, group_speed,
                                                    step_interval=step_interval, rng=self._rng)
        self._centres: Dict[int, Point] = {}
        self._offsets: Dict[Hashable, Point] = {}

    def set_rng(self, rng: np.random.Generator) -> None:
        super().set_rng(rng)
        self._centre_model.set_rng(rng)

    # ------------------------------------------------------------------- API

    def initial_positions(self, node_ids=None, **kwargs) -> Dict[Hashable, Point]:
        """Scatter group centres uniformly and members around them."""
        node_ids = list(node_ids) if node_ids is not None else list(self._group_of)
        for index in range(len(self.groups)):
            self._centres[index] = (float(self._rng.uniform(0, self.area[0])),
                                    float(self._rng.uniform(0, self.area[1])))
        positions: Dict[Hashable, Point] = {}
        for node in node_ids:
            group = self._group_of.get(node, 0)
            centre = self._centres.setdefault(
                group, (float(self._rng.uniform(0, self.area[0])),
                        float(self._rng.uniform(0, self.area[1]))))
            offset = self._draw_offset()
            self._offsets[node] = offset
            positions[node] = self._clamp((centre[0] + offset[0], centre[1] + offset[1]))
        return positions

    def _draw_offset(self) -> Point:
        radius = float(self._rng.uniform(0, self.member_radius))
        angle = float(self._rng.uniform(0, 2 * np.pi))
        return (radius * float(np.cos(angle)), radius * float(np.sin(angle)))

    def _clamp(self, point: Point) -> Point:
        return (min(max(point[0], 0.0), self.area[0]),
                min(max(point[1], 0.0), self.area[1]))

    def step(self, positions: Mapping[Hashable, Point], dt: float) -> Dict[Hashable, Point]:
        if not self._centres:
            for index in range(len(self.groups)):
                self._centres[index] = (float(self._rng.uniform(0, self.area[0])),
                                        float(self._rng.uniform(0, self.area[1])))
        # Move the group centres with the embedded random-waypoint model.
        centre_positions = {f"__centre_{idx}": pos for idx, pos in self._centres.items()}
        new_centres = self._centre_model.step(centre_positions, dt)
        for key, pos in new_centres.items():
            self._centres[int(key.rsplit("_", 1)[1])] = pos
        # Members drift towards a slowly changing offset around their centre.
        new_positions: Dict[Hashable, Point] = {}
        for node, position in positions.items():
            group = self._group_of.get(node, 0)
            centre = self._centres.get(group, position)
            offset = self._offsets.get(node)
            if offset is None or self._rng.random() < 0.1:
                offset = self._draw_offset()
                self._offsets[node] = offset
            target = (centre[0] + offset[0], centre[1] + offset[1])
            dx, dy = target[0] - position[0], target[1] - position[1]
            dist = float(np.hypot(dx, dy))
            max_move = self.member_speed * dt + self._centre_model.max_speed * dt
            if dist <= max_move or dist == 0.0:
                new_positions[node] = self._clamp(target)
            else:
                ratio = max_move / dist
                new_positions[node] = self._clamp((position[0] + dx * ratio,
                                                   position[1] + dy * ratio))
        return new_positions

    def group_index_of(self, node: Hashable) -> Optional[int]:
        """Mobility-group index of ``node``."""
        return self._group_of.get(node)
