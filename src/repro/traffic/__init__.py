"""Group-application traffic subsystem.

A new layer on top of the group service: pluggable, seeded workload
generators (:mod:`~repro.traffic.generators`) inject application payloads
scoped to each node's current group through the network's delivery pipeline,
and a :class:`~repro.traffic.ledger.DeliveryLedger` measures what the groups
actually delivered — per-group goodput, end-to-end latency distributions,
delivery ratio, staleness and cross-group leakage.

Traffic workloads are values: a :class:`~repro.traffic.spec.TrafficSpec`
(hashable, JSON-roundtrippable, mirroring ``ScenarioSpec``) names a
registered pattern plus parameter overrides, and is usable as a campaign grid
axis (``CampaignSpec.traffics``), an experiment override (E11) and a CLI
surface (``--traffic`` / ``--traffic-set`` / ``--traffic-sweep`` /
``--list-traffic``).
"""

from .generators import TrafficDriver, TrafficGenerator, attach_traffic
from .ledger import AppMessage, DeliveryLedger
from .registry import (TrafficDefinition, format_traffic_catalog, get_traffic,
                       normalize_traffic_spec, register_traffic, traffic_definitions,
                       traffic_names, traffic_parameter_names, traffic_pattern)
from .spec import TrafficSpec

__all__ = [
    "AppMessage",
    "DeliveryLedger",
    "TrafficDefinition",
    "TrafficDriver",
    "TrafficGenerator",
    "TrafficSpec",
    "attach_traffic",
    "format_traffic_catalog",
    "get_traffic",
    "normalize_traffic_spec",
    "register_traffic",
    "traffic_definitions",
    "traffic_names",
    "traffic_parameter_names",
    "traffic_pattern",
]
