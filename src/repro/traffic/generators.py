"""Workload generators and the driver that attaches them to deployments.

A :class:`TrafficDriver` wires one registered generator
(:mod:`repro.traffic.registry`) to a running deployment: it installs an
application-message handler on every process (the ``app_handler`` hook of
:class:`repro.sim.process.Process`), hands the generator seeded per-node
random streams, injects :class:`~repro.traffic.ledger.AppMessage` payloads
through ``network.broadcast`` — so application traffic rides the exact same
delivery pipeline (spatial index, link-state receiver lists, batched channel
decisions, bulk scheduling) as the protocol's own messages — and records
every send and reception in a :class:`~repro.traffic.ledger.DeliveryLedger`.

Messages are *scoped to the sender's current group*: the group (by default
the GRP node's ``current_view()``) is captured at send time and stamped on
the message, so the ledger can judge deliveries against the set of nodes the
service promised.

Determinism contract
--------------------
* Per-node random streams derive from ``(seed, spec digest, node id)`` via
  :func:`repro.sim.randomness.derive_seed`; nodes are enumerated sorted by
  ``str`` so no stream assignment ever depends on ``PYTHONHASHSEED``.
* Generators never broadcast synchronously from a delivery handler — replies
  and relays go through ``sim.schedule`` — so the batched and per-receiver
  delivery paths replay bit-identically (the ``on_message`` contract of
  :mod:`repro.net.network`).
* Bursts are bulk-inserted through ``sim.schedule_many`` (one amortized
  heap operation per burst, contiguous sequence numbers).
"""

from __future__ import annotations

import functools
from typing import Callable, Dict, FrozenSet, Hashable, List, Optional

import numpy as np

from repro.sim.randomness import derive_seed

from .ledger import AppMessage, DeliveryLedger
from .registry import get_traffic, normalize_traffic_spec, traffic_pattern
from .spec import TrafficSpec

__all__ = ["TrafficGenerator", "TrafficDriver", "attach_traffic"]


def _p(name: str, kind: str, default: object, description: str):
    from repro.scenarios.registry import ScenarioParameter
    return ScenarioParameter(name=name, kind=kind, default=default,
                             description=description)


class TrafficGenerator:
    """Base class of registered workload generators.

    One instance drives the whole deployment (not one per node).  Subclasses
    schedule their send events from :meth:`start` and may react to deliveries
    in :meth:`on_delivery` — never by broadcasting synchronously, always by
    scheduling through ``self.driver.sim``.
    """

    def __init__(self, driver: "TrafficDriver"):
        self.driver = driver

    def start(self) -> None:
        """Schedule the initial send events (called once by the driver)."""
        raise NotImplementedError

    def on_delivery(self, receiver: Hashable, msg: AppMessage) -> None:
        """React to ``receiver`` getting ``msg`` (replies, relays, ...)."""


class TrafficDriver:
    """Attaches one traffic workload to a simulator + network + processes.

    Parameters
    ----------
    sim, network:
        The deployment's simulator and network (duck-typed; anything with
        ``schedule``/``schedule_many``/``now`` and ``broadcast`` works).
    processes:
        Mapping node id -> :class:`~repro.sim.process.Process`; every process
        gets the driver's delivery handler installed on its ``app_handler``
        hook.
    spec:
        The traffic spec (normalized against the registry here).
    seed:
        Master seed of the workload; per-node streams derive from it.
    group_of:
        ``node id -> current group`` provider; defaults (in
        :func:`attach_traffic`) to the GRP node's ``current_view``.
    ledger:
        Optional pre-existing ledger (a fresh one is created otherwise).
    """

    def __init__(self, sim, network, processes: Dict[Hashable, object],
                 spec: TrafficSpec, seed: int = 0,
                 group_of: Optional[Callable[[Hashable], FrozenSet[Hashable]]] = None,
                 ledger: Optional[DeliveryLedger] = None):
        self.sim = sim
        self.network = network
        self.spec = normalize_traffic_spec(spec)
        self.seed = int(seed)
        self.ledger = ledger if ledger is not None else DeliveryLedger()
        self._processes = dict(processes)
        #: Enumeration order of every per-node structure: sorted by str, so
        #: stream assignment is independent of dict insertion and hash order.
        self.node_ids: List[Hashable] = sorted(self._processes, key=str)
        self._group_of = group_of if group_of is not None else self._singleton_group
        self._stream_base = f"traffic/{self.spec.spec_key()}"
        self._rngs: Dict[Hashable, np.random.Generator] = {
            nid: np.random.default_rng(
                derive_seed(self.seed, f"{self._stream_base}/node/{nid}"))
            for nid in self.node_ids}
        self._seq: Dict[Hashable, int] = dict.fromkeys(self.node_ids, 0)
        definition = get_traffic(self.spec.name)
        params = definition.resolve_params(self.spec.param_dict)
        self.generator: TrafficGenerator = definition.generator(self, **params)
        self._started = False

    # ------------------------------------------------------------ plumbing

    @staticmethod
    def _singleton_group(node_id: Hashable) -> FrozenSet[Hashable]:
        return frozenset({node_id})

    def rng(self, node_id: Hashable) -> np.random.Generator:
        """The node's independent random stream."""
        return self._rngs[node_id]

    def stream(self, name: str) -> np.random.Generator:
        """An extra driver-level stream (e.g. publisher selection)."""
        return np.random.default_rng(
            derive_seed(self.seed, f"{self._stream_base}/{name}"))

    def group_of(self, node_id: Hashable) -> FrozenSet[Hashable]:
        """The node's current group (the scope of its next message)."""
        return self._group_of(node_id)

    def has_node(self, node_id: Hashable) -> bool:
        """Whether the node still exists (generators stop rescheduling it)."""
        return node_id in self._processes

    def start(self) -> None:
        """Install delivery handlers and schedule the generator (idempotent)."""
        if self._started:
            return
        self._started = True
        for node_id in self.node_ids:
            self._processes[node_id].app_handler = functools.partial(
                self._on_delivery, node_id)
        self.generator.start()

    # ------------------------------------------------------------ data path

    def send(self, node_id: Hashable, size: int, data: object = None) -> Optional[AppMessage]:
        """Inject one application message from ``node_id``, group-scoped.

        Returns the message, or ``None`` when the node is gone or powered
        off (nothing is sent or recorded — a sleeping node's application does
        not produce traffic).
        """
        proc = self._processes.get(node_id)
        if proc is None or not proc._active:
            return None
        seq = self._seq[node_id] + 1
        self._seq[node_id] = seq
        msg = AppMessage(kind=self.spec.name, sender=node_id, seq=seq,
                         send_time=self.sim.now, group=self.group_of(node_id),
                         size=size, data=data)
        self.ledger.record_send(msg)
        self.network.broadcast(node_id, msg)
        return msg

    def _on_delivery(self, receiver: Hashable, sender: Hashable, payload: object) -> None:
        """Reception hook installed on every process (one partial per node)."""
        self.ledger.record_delivery(receiver, payload, self.sim.now)
        self.generator.on_delivery(receiver, payload)


def attach_traffic(deployment, spec: TrafficSpec, seed: int = 0,
                   group_of: Optional[Callable[[Hashable], FrozenSet[Hashable]]] = None,
                   ledger: Optional[DeliveryLedger] = None) -> TrafficDriver:
    """Attach (and start) a traffic workload on a GRP deployment.

    ``group_of`` defaults to each node's ``current_view()`` — application
    messages are scoped to the GRP group the sender belongs to at send time.
    One driver per deployment: the driver owns the ``app_handler`` hook of
    every process.
    """
    nodes = deployment.nodes
    if group_of is None:
        def group_of(node_id, _nodes=nodes):
            return _nodes[node_id].current_view()
    driver = TrafficDriver(sim=deployment.sim, network=deployment.network,
                           processes=nodes, spec=spec, seed=seed,
                           group_of=group_of, ledger=ledger)
    driver.start()
    return driver


# ----------------------------------------------------------------- catalog

@traffic_pattern(
    "periodic_beacon",
    "Every node beacons a group-scoped payload at a fixed, jittered period",
    [_p("interval", "float", 1.0, "send period per node (seconds)"),
     _p("jitter", "float", 0.1, "relative period jitter (desynchronizes nodes)"),
     _p("size", "int", 64, "payload size (bytes)")],
    tags=("steady",))
class PeriodicBeacon(TrafficGenerator):
    """The canonical group-application heartbeat (presence / telemetry)."""

    def __init__(self, driver: TrafficDriver, *, interval: float, jitter: float,
                 size: int):
        super().__init__(driver)
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.interval = interval
        self.jitter = max(0.0, min(float(jitter), 0.99))
        self.size = size

    def start(self) -> None:
        for node_id in self.driver.node_ids:
            # Seeded phase offset: nodes never beacon in lockstep.
            phase = float(self.driver.rng(node_id).uniform(0.0, self.interval))
            self.driver.sim.schedule(phase, self._fire, node_id)

    def _fire(self, node_id: Hashable) -> None:
        if not self.driver.has_node(node_id):
            return
        self.driver.send(node_id, self.size)
        wobble = float(self.driver.rng(node_id).uniform(-self.jitter, self.jitter))
        self.driver.sim.schedule(self.interval * (1.0 + wobble), self._fire, node_id)


@traffic_pattern(
    "bursty_pubsub",
    "A subset of publisher nodes emits message bursts at random gaps",
    [_p("publisher_fraction", "float", 0.25, "fraction of nodes that publish"),
     _p("mean_gap", "float", 5.0, "mean idle time between bursts (exponential)"),
     _p("burst_size", "int", 8, "messages per burst"),
     _p("spacing", "float", 0.02, "gap between messages inside a burst"),
     _p("size", "int", 256, "payload size (bytes)")],
    tags=("bursty",))
class BurstyPubSub(TrafficGenerator):
    """Publish/subscribe-style load: quiet periods punctured by bursts.

    Each burst is bulk-inserted through ``sim.schedule_many`` — one amortized
    heap operation per burst, with the contiguous sequence numbers individual
    ``schedule`` calls would have produced.
    """

    def __init__(self, driver: TrafficDriver, *, publisher_fraction: float,
                 mean_gap: float, burst_size: int, spacing: float, size: int):
        super().__init__(driver)
        if not 0.0 < publisher_fraction <= 1.0:
            raise ValueError("publisher_fraction must be in (0, 1]")
        if mean_gap <= 0 or burst_size < 1 or spacing < 0:
            raise ValueError("mean_gap must be > 0, burst_size >= 1, spacing >= 0")
        self.mean_gap = mean_gap
        self.burst_size = burst_size
        self.spacing = spacing
        self.size = size
        nodes = driver.node_ids
        count = max(1, round(publisher_fraction * len(nodes))) if nodes else 0
        picks = driver.stream("publishers").choice(len(nodes), size=count,
                                                   replace=False) if count else []
        self.publishers = [nodes[i] for i in sorted(int(i) for i in picks)]

    def start(self) -> None:
        for node_id in self.publishers:
            gap = float(self.driver.rng(node_id).exponential(self.mean_gap))
            self.driver.sim.schedule(gap, self._burst, node_id)

    def _burst(self, node_id: Hashable) -> None:
        if not self.driver.has_node(node_id):
            return
        delays = [i * self.spacing for i in range(self.burst_size)]
        self.driver.sim.schedule_many(delays, self._burst_send,
                                      [(node_id,)] * self.burst_size)
        span = (self.burst_size - 1) * self.spacing
        gap = float(self.driver.rng(node_id).exponential(self.mean_gap))
        self.driver.sim.schedule(span + gap, self._burst, node_id)

    def _burst_send(self, node_id: Hashable) -> None:
        self.driver.send(node_id, self.size)


@traffic_pattern(
    "request_reply",
    "Nodes poll their group; every member answers after a service delay",
    [_p("interval", "float", 2.0, "request period per node (seconds)"),
     _p("reply_delay", "float", 0.05, "service time before a member replies"),
     _p("size", "int", 128, "request payload size (bytes)"),
     _p("reply_size", "int", 64, "reply payload size (bytes)")],
    tags=("interactive",))
class RequestReply(TrafficGenerator):
    """Round-trip workload: the ledger records request→first-reply latency.

    Replies are *scheduled* (never sent synchronously from the delivery
    handler), honouring the no-synchronous-broadcast contract of the batched
    delivery pipeline.
    """

    def __init__(self, driver: TrafficDriver, *, interval: float, reply_delay: float,
                 size: int, reply_size: int):
        super().__init__(driver)
        if interval <= 0 or reply_delay < 0:
            raise ValueError("interval must be > 0 and reply_delay >= 0")
        self.interval = interval
        self.reply_delay = reply_delay
        self.size = size
        self.reply_size = reply_size

    def start(self) -> None:
        for node_id in self.driver.node_ids:
            phase = float(self.driver.rng(node_id).uniform(0.0, self.interval))
            self.driver.sim.schedule(phase, self._fire, node_id)

    def _fire(self, node_id: Hashable) -> None:
        if not self.driver.has_node(node_id):
            return
        msg = self.driver.send(node_id, self.size, data="req")
        if msg is not None and len(msg.group) > 1:
            self.driver.ledger.record_request(node_id, msg.seq, msg.send_time)
        self.driver.sim.schedule(self.interval, self._fire, node_id)

    def on_delivery(self, receiver: Hashable, msg: AppMessage) -> None:
        data = msg.data
        if data == "req":
            if receiver in msg.group:
                self.driver.sim.schedule(self.reply_delay, self._reply,
                                         receiver, msg.sender, msg.seq)
        elif isinstance(data, tuple) and data[0] == "rep":
            _, requester, request_seq = data
            if receiver == requester:
                self.driver.ledger.record_reply(requester, request_seq,
                                                self.driver.sim.now)

    def _reply(self, replier: Hashable, requester: Hashable, request_seq: int) -> None:
        if not self.driver.has_node(replier):
            return
        self.driver.send(replier, self.reply_size, data=("rep", requester, request_seq))


@traffic_pattern(
    "state_sync",
    "Versioned state gossip: publish periodically, relay fresh versions once",
    [_p("interval", "float", 1.5, "publish period per node (seconds)"),
     _p("size", "int", 512, "state payload size (bytes)"),
     _p("relay", "bool", True, "re-broadcast a version the first time it is learnt"),
     _p("relay_delay", "float", 0.02, "delay before a relay is sent")],
    tags=("gossip",))
class StateSync(TrafficGenerator):
    """Anti-entropy style state dissemination over the group.

    Every node owns a monotonically versioned state (the message ``seq``
    doubles as the version).  Receivers track the newest version they have
    per publisher and — when ``relay`` is on — re-broadcast a version exactly
    once on first learning it, via a scheduled send.  The ledger's staleness
    columns measure how many versions behind deliveries run.
    """

    def __init__(self, driver: TrafficDriver, *, interval: float, size: int,
                 relay: bool, relay_delay: float):
        super().__init__(driver)
        if interval <= 0 or relay_delay < 0:
            raise ValueError("interval must be > 0 and relay_delay >= 0")
        self.interval = interval
        self.size = size
        self.relay = relay
        self.relay_delay = relay_delay
        #: (holder, publisher) -> newest version held.
        self._known: Dict[tuple, int] = {}

    def start(self) -> None:
        for node_id in self.driver.node_ids:
            phase = float(self.driver.rng(node_id).uniform(0.0, self.interval))
            self.driver.sim.schedule(phase, self._publish, node_id)

    def _publish(self, node_id: Hashable) -> None:
        if not self.driver.has_node(node_id):
            return
        msg = self.driver.send(node_id, self.size, data="state")
        if msg is not None:
            self._known[(node_id, node_id)] = msg.seq
        self.driver.sim.schedule(self.interval, self._publish, node_id)

    def on_delivery(self, receiver: Hashable, msg: AppMessage) -> None:
        if msg.data == "state":
            origin, version = msg.sender, msg.seq
        elif isinstance(msg.data, tuple) and msg.data[0] == "relay":
            _, origin, version = msg.data
        else:
            return
        key = (receiver, origin)
        if version <= self._known.get(key, 0):
            return
        self._known[key] = version
        if self.relay:
            self.driver.sim.schedule(self.relay_delay, self._relay,
                                     receiver, origin, version)

    def _relay(self, node_id: Hashable, origin: Hashable, version: int) -> None:
        if not self.driver.has_node(node_id):
            return
        self.driver.send(node_id, self.size, data=("relay", origin, version))
