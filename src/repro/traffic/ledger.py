"""Application messages and the per-group delivery ledger.

The ledger is the measurement half of the traffic subsystem: every
application message injected by a workload generator is recorded at send time
(together with the sender's group at that instant) and again at each
delivery, and the ledger folds those observations into per-group accounting:

* **goodput** — in-group deliveries (messages and payload bytes) per second;
* **delivery ratio** — in-group deliveries over the receptions the sender's
  group promised (``|group| - 1`` per send);
* **end-to-end latency** — the distribution of (delivery time − send time)
  over in-group deliveries;
* **staleness** — how many messages of the sender's stream the receiver was
  behind at delivery (``latest seq sent − seq delivered``; 0 = fresh);
* **cross-group leakage** — deliveries to nodes outside the sender's group
  at send time (the radio broadcasts to the *vicinity*, the service scopes to
  the *group*; the gap is the leakage).

Determinism contract: the ledger draws no randomness and iterates no
unordered containers while producing rows, so two runs that deliver the same
messages in the same order produce bit-identical rows — whatever delivery
backend (spatial index × vectorized pipeline) or campaign executor produced
them.  Group rows are keyed by the group's minimum member (``min`` under
``str`` order, the same PYTHONHASHSEED-independent convention the campaign
layer uses) and emitted sorted by that key.
"""

from __future__ import annotations

import math
from typing import Any, Dict, FrozenSet, Hashable, List, Optional, Tuple

from repro.obs import current as _obs_current

__all__ = ["AppMessage", "DeliveryLedger"]


class AppMessage:
    """One application payload injected by a workload generator.

    A single instance is shared by every receiver of the broadcast (the
    network delivers the same object), so per-send allocation cost is one
    object regardless of group size.  ``group`` is the sender's group *at
    send time*; deliveries are judged against it, not against the group at
    delivery time — the service promised the group that existed when the
    application handed the message over.
    """

    __slots__ = ("kind", "sender", "seq", "send_time", "group", "size", "data")

    #: Duck-typed marker :meth:`repro.sim.process.Process.deliver` dispatches
    #: on — the sim layer must not import the traffic layer, so the payload
    #: carries its own routing flag instead of an isinstance check.
    is_app_payload = True

    def __init__(self, kind: str, sender: Hashable, seq: int, send_time: float,
                 group: FrozenSet[Hashable], size: int, data: Any = None):
        self.kind = kind
        self.sender = sender
        self.seq = seq
        self.send_time = send_time
        self.group = group
        self.size = size
        self.data = data

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (f"AppMessage(kind={self.kind!r}, sender={self.sender!r}, "
                f"seq={self.seq}, t={self.send_time:.3f}, |group|={len(self.group)})")


class _GroupTally:
    """Per-group accumulators (one instance per distinct group key)."""

    __slots__ = ("offered", "expected", "delivered", "leaked", "bytes_delivered",
                 "latencies", "lag_total", "lag_max")

    def __init__(self) -> None:
        self.offered = 0            # messages injected by members of the group
        self.expected = 0           # promised receptions (|group| - 1 per send)
        self.delivered = 0          # in-group receptions
        self.leaked = 0             # receptions by non-members
        self.bytes_delivered = 0    # payload bytes over in-group receptions
        self.latencies: List[float] = []
        self.lag_total = 0
        self.lag_max = 0


def _percentile(sorted_values: List[float], fraction: float) -> float:
    """Nearest-rank percentile of an ascending list (deterministic).

    The rank is clamped into ``[0, len - 1]``, so a single-sample list
    returns its sample for *any* fraction and fractions at or beyond 1.0
    (or float round-up of ``fraction * len``) return the maximum instead
    of indexing past the end.
    """
    index = max(0, math.ceil(fraction * len(sorted_values)) - 1)
    return sorted_values[min(index, len(sorted_values) - 1)]


class DeliveryLedger:
    """Tracks application-message sends and deliveries, grouped by group.

    The driver calls :meth:`record_send` once per injected message and
    :meth:`record_delivery` once per reception; request/reply generators
    additionally report round trips through :meth:`record_request` /
    :meth:`record_reply`.  :meth:`group_rows` and :meth:`totals` render the
    accounting as flat dict rows for experiment tables and benchmarks.
    """

    def __init__(self) -> None:
        self._groups: Dict[Hashable, _GroupTally] = {}
        #: sender -> latest sent seq; staleness of a delivery is judged
        #: against the newest message the sender has emitted so far.
        self._latest_seq: Dict[Hashable, int] = {}
        self._pending_requests: Dict[Tuple[Hashable, int], float] = {}
        self._rtts: List[float] = []
        self.messages_sent = 0
        self.receptions = 0
        self.requests_sent = 0
        self.replies_matched = 0
        self._first_event: Optional[float] = None
        self._last_event: Optional[float] = None
        obs = _obs_current()
        self._obs = obs
        self._obs_sends = obs.registry.counter("traffic.sends") if obs else None
        self._obs_receptions = obs.registry.counter("traffic.receptions") if obs else None

    # ----------------------------------------------------------- recording

    @staticmethod
    def group_key(group: FrozenSet[Hashable]) -> Hashable:
        """Stable identifier of a group: its minimum member under str order."""
        return min(group, key=str)

    def _tally(self, group: FrozenSet[Hashable]) -> _GroupTally:
        key = self.group_key(group)
        tally = self._groups.get(key)
        if tally is None:
            tally = self._groups[key] = _GroupTally()
        return tally

    def _touch(self, time: float) -> None:
        if self._first_event is None:
            self._first_event = time
        self._last_event = time

    def record_send(self, msg: AppMessage) -> None:
        """Account one injected message against the sender's group."""
        self.messages_sent += 1
        if self._obs_sends is not None:
            self._obs_sends.inc()
        self._latest_seq[msg.sender] = msg.seq
        tally = self._tally(msg.group)
        tally.offered += 1
        tally.expected += len(msg.group) - (1 if msg.sender in msg.group else 0)
        self._touch(msg.send_time)

    def record_delivery(self, receiver: Hashable, msg: AppMessage, now: float) -> None:
        """Account one reception of ``msg`` by ``receiver`` at time ``now``."""
        self.receptions += 1
        obs = self._obs
        t0 = obs.clock() if obs is not None else 0
        tally = self._tally(msg.group)
        if receiver in msg.group:
            tally.delivered += 1
            tally.bytes_delivered += msg.size
            tally.latencies.append(now - msg.send_time)
            lag = self._latest_seq.get(msg.sender, msg.seq) - msg.seq
            tally.lag_total += lag
            if lag > tally.lag_max:
                tally.lag_max = lag
        else:
            tally.leaked += 1
        self._touch(now)
        if obs is not None:
            self._obs_receptions.inc()
            obs.record_span("ledger.record_delivery", now, t0)

    def record_request(self, requester: Hashable, request_id: int, time: float) -> None:
        """Note an outstanding request (round-trip measurement, reply pending)."""
        self.requests_sent += 1
        self._pending_requests[(requester, request_id)] = time

    def record_reply(self, requester: Hashable, request_id: int, now: float) -> None:
        """Close a round trip; only the first reply per request counts."""
        sent = self._pending_requests.pop((requester, request_id), None)
        if sent is not None:
            self.replies_matched += 1
            self._rtts.append(now - sent)

    def merge_from(self, other: "DeliveryLedger") -> None:
        """Fold another ledger's accounting into this one.

        Used by the sharded executor (:mod:`repro.shard`) to reassemble the
        single-process ledger from per-shard ledgers over disjoint node
        sets.  Every reported row is recomputed from the merged accumulators
        — latency and RTT lists are sorted before any quantile or mean — so
        the merge result is independent of shard count and merge order for
        the quantities the reports expose.  (Receiver-side staleness is
        recorded at delivery time against the *local* newest-seq table, so
        cross-shard staleness is exact only for zero-delay application
        channels.)
        """
        for key, tally in other._groups.items():
            mine = self._groups.get(key)
            if mine is None:
                mine = self._groups[key] = _GroupTally()
            mine.offered += tally.offered
            mine.expected += tally.expected
            mine.delivered += tally.delivered
            mine.leaked += tally.leaked
            mine.bytes_delivered += tally.bytes_delivered
            mine.latencies.extend(tally.latencies)
            mine.lag_total += tally.lag_total
            mine.lag_max = max(mine.lag_max, tally.lag_max)
        for sender, seq in other._latest_seq.items():
            if seq > self._latest_seq.get(sender, -1):
                self._latest_seq[sender] = seq
        self._pending_requests.update(other._pending_requests)
        self._rtts.extend(other._rtts)
        self.messages_sent += other.messages_sent
        self.receptions += other.receptions
        self.requests_sent += other.requests_sent
        self.replies_matched += other.replies_matched
        if other._first_event is not None:
            self._first_event = (other._first_event if self._first_event is None
                                 else min(self._first_event, other._first_event))
        if other._last_event is not None:
            self._last_event = (other._last_event if self._last_event is None
                                else max(self._last_event, other._last_event))

    # ----------------------------------------------------------- reporting

    def observed_span(self) -> float:
        """Time between the first and last recorded event (0 when empty)."""
        if self._first_event is None or self._last_event is None:
            return 0.0
        return self._last_event - self._first_event

    def group_rows(self) -> List[Dict[str, object]]:
        """One row per group, sorted by group key (str order)."""
        rows = []
        for key in sorted(self._groups, key=str):
            tally = self._groups[key]
            row: Dict[str, object] = {"group": str(key)}
            row.update(self._tally_row(tally))
            rows.append(row)
        return rows

    def totals(self, duration: Optional[float] = None) -> Dict[str, object]:
        """Aggregate row over every group.

        ``duration`` is the measurement window for the goodput rates; it
        defaults to the observed event span (pass the simulated duration for
        stable rates across runs that end quietly).
        """
        merged = _GroupTally()
        for tally in self._groups.values():
            merged.offered += tally.offered
            merged.expected += tally.expected
            merged.delivered += tally.delivered
            merged.leaked += tally.leaked
            merged.bytes_delivered += tally.bytes_delivered
            merged.latencies.extend(tally.latencies)
            merged.lag_total += tally.lag_total
            merged.lag_max = max(merged.lag_max, tally.lag_max)
        # Cross-group latency lists concatenate in group-key order; sorting
        # below makes the quantiles independent of that concatenation order.
        row = self._tally_row(merged, duration=duration)
        if self.requests_sent:
            row["requests"] = self.requests_sent
            row["replies"] = self.replies_matched
            if self._rtts:
                rtts = sorted(self._rtts)
                row["rtt_mean"] = sum(rtts) / len(rtts)
                row["rtt_p95"] = _percentile(rtts, 0.95)
        return row

    def _tally_row(self, tally: _GroupTally,
                   duration: Optional[float] = None) -> Dict[str, object]:
        window = duration if duration is not None else self.observed_span()
        latencies = sorted(tally.latencies)
        row: Dict[str, object] = {
            "offered": tally.offered,
            "expected": tally.expected,
            "delivered": tally.delivered,
            "delivery_ratio": (round(tally.delivered / tally.expected, 4)
                               if tally.expected else None),
            "goodput_msgs_per_s": (round(tally.delivered / window, 2)
                                   if window > 0 else None),
            "goodput_bytes_per_s": (round(tally.bytes_delivered / window, 1)
                                    if window > 0 else None),
            "latency_mean": (round(sum(latencies) / len(latencies), 5)
                             if latencies else None),
            "latency_p95": round(_percentile(latencies, 0.95), 5) if latencies else None,
            "latency_max": round(latencies[-1], 5) if latencies else None,
            "staleness_mean": (round(tally.lag_total / tally.delivered, 4)
                               if tally.delivered else None),
            "staleness_max": tally.lag_max,
            "leaked": tally.leaked,
            "leakage_ratio": (round(tally.leaked / (tally.delivered + tally.leaked), 4)
                              if (tally.delivered + tally.leaked) else None),
        }
        return row
