"""Declarative traffic specifications.

A :class:`TrafficSpec` names a registered workload generator plus the
parameter values that differ from the registry defaults.  It deliberately
mirrors :class:`repro.scenarios.ScenarioSpec`: hashable (so specs can key
caches and set-like containers), JSON-roundtrippable (so campaign result
stores can persist the traffic a task ran under and resume against it), and
ignorant of the registry — validation, default resolution and type coercion
happen in :mod:`repro.traffic.registry` when the workload is attached.

The two spec types stay distinct classes on purpose: a scenario describes
*where the nodes are and how they move*, a traffic spec describes *what the
application sends over the groups* — campaign task ids, seed-stream names and
spec hashes must never confuse one for the other (see
``CampaignSpec.task_seed``).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Dict, Mapping, Tuple

from repro.scenarios.spec import _freeze_value, _thaw_value

__all__ = ["TrafficSpec"]


@dataclass(frozen=True)
class TrafficSpec:
    """An immutable (traffic pattern name, explicit parameters) pair.

    ``params`` is stored as a tuple of ``(name, value)`` pairs sorted by
    parameter name, so two specs with the same parameters compare and hash
    equal whatever order they were created with.  Sequence values are frozen
    to tuples so the whole spec stays hashable.
    """

    name: str
    params: Tuple[Tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "name", str(self.name))
        pairs = dict(self.params)
        frozen = tuple(sorted((str(k), _freeze_value(v)) for k, v in pairs.items()))
        object.__setattr__(self, "params", frozen)

    # --------------------------------------------------------- construction

    @classmethod
    def create(cls, name: str, **params: object) -> "TrafficSpec":
        """Build a spec from keyword parameters."""
        return cls(name=name, params=tuple(params.items()))

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "TrafficSpec":
        """Inverse of :meth:`as_dict` (JSON lists are re-frozen to tuples)."""
        params = data.get("params") or {}
        if not isinstance(params, Mapping):
            raise ValueError(f"traffic params must be a mapping, got {params!r}")
        return cls(name=str(data["name"]), params=tuple(params.items()))

    def with_params(self, **overrides: object) -> "TrafficSpec":
        """A new spec with ``overrides`` merged over the current parameters."""
        merged = dict(self.params)
        merged.update(overrides)
        return TrafficSpec(name=self.name, params=tuple(merged.items()))

    # --------------------------------------------------------------- access

    @property
    def param_dict(self) -> Dict[str, object]:
        """Explicit parameters as a plain dict (copy)."""
        return dict(self.params)

    # ------------------------------------------------------------- identity

    def as_dict(self) -> Dict[str, object]:
        """JSON-serializable form; see :meth:`from_dict` for the inverse."""
        return {"name": self.name,
                "params": {k: _thaw_value(v) for k, v in self.params}}

    def canonical_json(self) -> str:
        """Canonical JSON rendering (stable across processes and platforms)."""
        return json.dumps(self.as_dict(), sort_keys=True, separators=(",", ":"))

    def spec_key(self) -> str:
        """Short stable digest of the spec (used in derived seed names)."""
        return hashlib.sha256(self.canonical_json().encode("utf-8")).hexdigest()[:12]

    def label(self) -> str:
        """Compact human-readable identifier, unique per distinct spec.

        Used in campaign task ids and report headers, e.g.
        ``periodic_beacon[interval=0.5]``.  Tuple values render ``+``-joined
        to stay free of the separators the campaign layer and the CLI use.
        """
        if not self.params:
            return self.name
        parts = []
        for key, value in self.params:
            if isinstance(value, tuple):
                rendered = "+".join(str(v) for v in value)
            else:
                rendered = str(value)
            parts.append(f"{key}={rendered}")
        return f"{self.name}[{','.join(parts)}]"
