"""The traffic registry: named workload generators with declared schemas.

Every application workload the harness can inject is registered here as a
:class:`TrafficDefinition`: a name, a one-line description, a typed parameter
schema with defaults (reusing :class:`repro.scenarios.ScenarioParameter` —
the coercion rules of scenario parameters and traffic parameters are
deliberately identical), and a generator class that drives the injection.
The registry is the single source of truth consumed by

* the experiment suite (E11's default workload and ``--traffic`` overrides),
* the campaign layer (traffic axes of a result grid),
* the CLI (``--traffic`` / ``--traffic-set`` / ``--traffic-sweep`` /
  ``--list-traffic``),
* the documentation (the README traffic catalog is rendered from it).

Determinism contract: attaching a normalized spec with a given seed to a
given deployment always injects the bit-identical message sequence, whatever
process runs the simulation — every random stream derives from the seed
through :func:`repro.sim.randomness.derive_seed` with a stream name that
includes the spec digest.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Tuple

from repro.scenarios.registry import ScenarioParameter

from .spec import TrafficSpec

__all__ = ["TrafficDefinition", "register_traffic", "traffic_pattern", "get_traffic",
           "traffic_names", "traffic_definitions", "traffic_parameter_names",
           "normalize_traffic_spec", "format_traffic_catalog"]


@dataclass(frozen=True)
class TrafficDefinition:
    """A registered traffic pattern: generator class plus parameter schema."""

    name: str
    description: str
    parameters: Tuple[ScenarioParameter, ...]
    generator: Callable[..., object]
    tags: Tuple[str, ...] = field(default=())

    def parameter(self, name: str) -> ScenarioParameter:
        """The declared parameter called ``name``."""
        for param in self.parameters:
            if param.name == name:
                return param
        raise KeyError(f"traffic {self.name!r} has no parameter {name!r}; "
                       f"valid: {[p.name for p in self.parameters]}")

    def defaults(self) -> Dict[str, object]:
        """Default value of every optional parameter."""
        return {p.name: p.default for p in self.parameters if not p.required}

    def resolve_params(self, explicit: Mapping[str, object]) -> Dict[str, object]:
        """Merge ``explicit`` over the defaults, validating and coercing.

        Unknown and missing-required parameters raise ``ValueError`` so a
        typo'd ``--traffic-set`` flag fails before any simulation runs.
        """
        declared = {p.name: p for p in self.parameters}
        unknown = sorted(set(explicit) - set(declared))
        if unknown:
            raise ValueError(f"unknown parameter(s) {unknown} for traffic {self.name!r}; "
                             f"valid: {sorted(declared)}")
        resolved: Dict[str, object] = {}
        for param in self.parameters:
            if param.name in explicit:
                resolved[param.name] = param.coerce(explicit[param.name])
            elif param.required:
                raise ValueError(
                    f"traffic {self.name!r} requires parameter {param.name!r}")
            else:
                resolved[param.name] = param.default
        return resolved


_REGISTRY: Dict[str, TrafficDefinition] = {}


def register_traffic(definition: TrafficDefinition) -> TrafficDefinition:
    """Add a definition to the registry (duplicate names are an error)."""
    if definition.name in _REGISTRY:
        raise ValueError(f"traffic {definition.name!r} is already registered")
    _REGISTRY[definition.name] = definition
    return definition


def traffic_pattern(name: str, description: str, parameters: List[ScenarioParameter],
                    tags: Tuple[str, ...] = ()) -> Callable:
    """Decorator registering a generator class as a traffic pattern.

    The class is instantiated as ``generator(driver, **params)`` with every
    declared parameter resolved; see
    :class:`repro.traffic.generators.TrafficGenerator` for the interface.
    """
    def decorate(generator: Callable) -> Callable:
        register_traffic(TrafficDefinition(
            name=name, description=description, parameters=tuple(parameters),
            generator=generator, tags=tuple(tags)))
        return generator
    return decorate


def get_traffic(name: str) -> TrafficDefinition:
    """Look a traffic pattern up by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown traffic {name!r}; valid: {traffic_names()}") from None


def traffic_names() -> List[str]:
    """Sorted names of every registered traffic pattern."""
    return sorted(_REGISTRY)


def traffic_definitions() -> List[TrafficDefinition]:
    """Every registered definition, sorted by name."""
    return [_REGISTRY[name] for name in traffic_names()]


def traffic_parameter_names(name: str) -> List[str]:
    """Declared parameter names of the traffic pattern called ``name``."""
    return [p.name for p in get_traffic(name).parameters]


def normalize_traffic_spec(spec: TrafficSpec) -> TrafficSpec:
    """Coerce the spec's explicit parameters through the registry schema.

    Defaults are *not* filled in (specs stay minimal, labels stay compact),
    but every explicit value takes its canonical type, so label /
    seed-derivation / hash always describe the workload that actually runs.
    Unknown patterns or parameters raise.
    """
    definition = get_traffic(spec.name)
    unknown = sorted(set(spec.param_dict) - {p.name for p in definition.parameters})
    if unknown:
        raise ValueError(f"unknown parameter(s) {unknown} for traffic {spec.name!r}; "
                         f"valid: {sorted(p.name for p in definition.parameters)}")
    coerced = {name: definition.parameter(name).coerce(value)
               for name, value in spec.params}
    return TrafficSpec(name=spec.name, params=tuple(coerced.items()))


def format_traffic_catalog(verbose: bool = True) -> str:
    """Human-readable catalog of every registered traffic pattern.

    Printed by ``--list-traffic`` and pasted (regenerated) into the README.
    """
    lines: List[str] = []
    for definition in traffic_definitions():
        lines.append(f"{definition.name}: {definition.description}")
        if not verbose:
            continue
        for param in definition.parameters:
            default = "required" if param.required else f"default {param.default!r}"
            detail = f" — {param.description}" if param.description else ""
            lines.append(f"    {param.name} ({param.kind}, {default}){detail}")
    return "\n".join(lines)
