#!/usr/bin/env python
"""VANET convoy scenario: vehicles on a highway maintain best-effort groups.

This is the motivating application of the paper: vehicles that cooperate
(distributed perception, chat…) form groups whose diameter is bounded by the
application; groups should survive as long as the vehicles stay close, split
only when the diameter constraint forces it, and merge again when convoys
catch up with each other.

The example runs GRP over a two-lane ring road, samples the configuration
every 2 seconds and reports group stability (membership churn, group lifetime)
against an idealised Max-Min d-cluster baseline recomputed on every sample.

Run with::

    python examples/vanet_convoy.py
"""

from __future__ import annotations

import os

from repro.baselines.maxmin import MaxMinDCluster
from repro.experiments.runner import attach_baseline, run_with_sampler
from repro.experiments.scenarios import vanet_highway
from repro.metrics.groups import average_membership_churn, mean_group_lifetime
from repro.metrics.report import print_table

QUICK = os.environ.get("REPRO_QUICK", "") == "1"


def run_variant(label, views_provider=None, seed=21):
    deployment = vanet_highway(n=18, road_length=2000.0, radio_range=200.0, dmax=3,
                               base_speed=25.0, seed=seed)
    driver = None
    if views_provider == "max-min":
        driver = attach_baseline(deployment, MaxMinDCluster(), period=2.0)
    sampler = run_with_sampler(deployment, duration=40.0 if QUICK else 120.0,
                               sample_interval=2.0, warmup=20.0 if QUICK else 30.0,
                               views_provider=driver.views if driver else None)
    return {
        "algorithm": label,
        "membership churn / step": round(average_membership_churn(sampler.samples), 3),
        "mean group lifetime (s)": round(mean_group_lifetime(sampler.samples), 1),
        "mean #groups": round(sum(s.report.group_count for s in sampler.samples)
                              / len(sampler.samples), 1),
    }


def main() -> None:
    print("VANET convoy scenario — 18 vehicles, 2-lane ring road, Dmax = 3\n")
    rows = [run_variant("GRP (best-effort groups)"),
            run_variant("Max-Min d-cluster (recomputed)", views_provider="max-min")]
    print_table(rows)
    print("\nGRP keeps convoys together (low churn, long lifetimes); the re-clustering "
          "baseline reshuffles membership whenever relative positions change.")


if __name__ == "__main__":
    main()
