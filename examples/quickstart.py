#!/usr/bin/env python
"""Quickstart: build a small static GRP network and watch the groups form.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import GRPConfig, build_grp_network, evaluate_configuration, omega
from repro.net.geometry import random_positions


def main() -> None:
    dmax = 3
    # 15 nodes scattered over a 300 m x 300 m area, 110 m radio range.
    positions = random_positions(range(15), area=(300.0, 300.0),
                                 rng=np.random.default_rng(7))
    deployment = build_grp_network(positions, GRPConfig(dmax=dmax),
                                   radio_range=110.0, seed=7)

    print(f"GRP quickstart — {len(positions)} nodes, Dmax = {dmax}")
    print(f"{'time':>6} | {'groups':>6} | {'largest':>7} | legitimate")
    print("-" * 40)
    deployment.start()
    for step in range(0, 41, 5):
        deployment.sim.run(until=step)
        views = deployment.views()
        report = evaluate_configuration(deployment.sim.now, views,
                                        deployment.topology(), dmax)
        print(f"{deployment.sim.now:6.0f} | {report.group_count:6d} | "
              f"{report.largest_group:7d} | {report.legitimate}")

    print("\nFinal groups (the views used by applications):")
    for group in sorted(set(omega(deployment.views()).values()),
                        key=lambda g: (-len(g), sorted(map(str, g)))):
        print("  ", sorted(group))
    print(f"\nMessages broadcast: {deployment.network.messages_sent}")


if __name__ == "__main__":
    main()
