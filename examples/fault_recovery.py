#!/usr/bin/env python
"""Self-stabilization demo: transient memory corruption and recovery.

The protocol is self-stabilizing: whatever the initial (or corrupted) state,
it converges back to a legitimate configuration.  This example lets a static
network stabilize, then corrupts half of the nodes — ghost identities inserted
into their lists, oversized lists, scrambled quarantines, wrong priorities —
and reports how long the system takes to clean up and re-stabilize.

Run with::

    python examples/fault_recovery.py

``REPRO_QUICK=1`` shrinks the simulated durations (used by the CI smoke test).
"""

from __future__ import annotations

import os

from repro.core.predicates import evaluate_configuration
from repro.experiments.runner import run_with_sampler
from repro.experiments.scenarios import static_random
from repro.metrics.convergence import stabilization_time
from repro.net.faults import FaultInjector

QUICK = os.environ.get("REPRO_QUICK", "") == "1"


def legitimate_now(deployment) -> bool:
    report = evaluate_configuration(deployment.sim.now, deployment.views(),
                                    deployment.topology(), deployment.config.dmax)
    return report.legitimate


def main() -> None:
    deployment = static_random(n=16, area=300.0, radio_range=120.0, dmax=3, seed=5)
    print("Fault-recovery demo — 16 static nodes, Dmax = 3\n")

    sampler = run_with_sampler(deployment, duration=40.0 if QUICK else 60.0)
    initial_stab = stabilization_time(sampler.samples)
    print(f"initial stabilization time ........ "
          f"{'not reached' if initial_stab is None else f'{initial_stab:.0f} s'}")
    print(f"legitimate before faults .......... {legitimate_now(deployment)}")

    ghosts = ["ghost-a", "ghost-b", "ghost-c"]
    injector = FaultInjector(deployment.network, rng=deployment.sim.spawn_rng())
    corrupted = injector.random_memory_corruption(fraction=0.5, ghost_pool=ghosts)
    injector.oversized_list(corrupted[0], extra_ids=["ghost-deep-1", "ghost-deep-2"])
    injector.corrupt_priority(corrupted[-1], value=999)
    print(f"\ninjected faults on nodes .......... {sorted(map(str, corrupted))}")
    print(f"ghost identities inserted ......... {ghosts + ['ghost-deep-1', 'ghost-deep-2']}")

    fault_time = deployment.sim.now
    all_ghosts = ghosts + ["ghost-deep-1", "ghost-deep-2"]

    def ghosts_remaining() -> int:
        return sum(1 for node in deployment.nodes.values()
                   for g in all_ghosts if node.alist.contains(g))

    print(f"ghost occurrences right after ..... {ghosts_remaining()}")
    cleanup_at = None
    while deployment.sim.now < fault_time + (30.0 if QUICK else 60.0):
        deployment.sim.run(until=deployment.sim.now + 1.0)
        if cleanup_at is None and ghosts_remaining() == 0:
            cleanup_at = deployment.sim.now
    print(f"ghost cleanup completed after ..... "
          f"{(cleanup_at - fault_time) if cleanup_at else float('nan'):.0f} s")

    recovery_sampler = run_with_sampler(deployment, duration=30.0 if QUICK else 40.0)
    restab = stabilization_time(recovery_sampler.samples)
    print(f"re-stabilization time ............. "
          f"{restab:.0f} s" if restab is not None else "re-stabilization not reached")
    print(f"legitimate at the end ............. {legitimate_now(deployment)}")


if __name__ == "__main__":
    main()
