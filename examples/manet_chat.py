#!/usr/bin/env python
"""MANET chat scenario: an application consuming GRP views before stabilization.

A "chat" application runs on every node and simply sends a message to its
current group every few seconds.  The point of the best-effort property is that
the application can rely on the view *while* the protocol is still converging:
as long as the mobility does not break the diameter constraint (ΠT), nobody it
has been chatting with disappears from the group (ΠC).

The example runs a random-waypoint MANET at pedestrian speed, lets every node
chat using its current view, and then reports (a) how many chat messages were
addressed to members that later vanished although ΠT held, and (b) the
continuity summary measured by the metrics package.

Run with::

    python examples/manet_chat.py

``REPRO_QUICK=1`` shrinks the simulated duration (used by the CI smoke test).
"""

from __future__ import annotations

import os
from collections import Counter

from repro.experiments.runner import run_with_sampler
from repro.experiments.scenarios import manet_waypoint
from repro.metrics.continuity import continuity_summary

QUICK = os.environ.get("REPRO_QUICK", "") == "1"


def main() -> None:
    deployment = manet_waypoint(n=16, area=350.0, radio_range=130.0, dmax=3,
                                speed=1.5, seed=11)
    chat_log = Counter()

    def chat_round() -> None:
        # Every node "sends" one chat message to each member of its view.
        for node_id, node in deployment.nodes.items():
            for member in node.current_view():
                if member != node_id:
                    chat_log[(node_id, member)] += 1

    deployment.start()
    deployment.sim.call_every(5.0, chat_round)
    sampler = run_with_sampler(deployment, duration=50.0 if QUICK else 150.0,
                               sample_interval=1.0)

    summary = continuity_summary(sampler.transitions)
    total_messages = sum(chat_log.values())
    partners = len(chat_log)

    print("MANET chat scenario — 16 nodes, random waypoint at 1.5 m/s, Dmax = 3\n")
    print(f"chat messages sent ................ {total_messages}")
    print(f"distinct (sender, partner) pairs .. {partners}")
    print(f"sampled transitions ............... {summary.transitions}")
    print(f"transitions where ΠT held ......... {summary.topological_held}")
    print(f"continuity violations (total) ..... {summary.violations_total}")
    print(f"violations while ΠT held .......... {summary.violations_under_topological}")
    print(f"best-effort property respected .... {summary.best_effort_respected}")
    print("\nWith slow mobility the diameter constraint is preserved, so the chat "
          "application never loses a partner it was talking to — even though the "
          "protocol keeps converging in the background.")


if __name__ == "__main__":
    main()
