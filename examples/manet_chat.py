#!/usr/bin/env python
"""MANET chat scenario: an application consuming GRP views before stabilization.

A "chat" application runs on every node: through the traffic subsystem
(:mod:`repro.traffic`) each node periodically sends a message scoped to its
current group, the messages ride the same simulated radio channel as the
protocol's own traffic, and the delivery ledger records what the group
actually delivered.  The point of the best-effort property is that the
application can rely on the view *while* the protocol is still converging: as
long as the mobility does not break the diameter constraint (ΠT), nobody it
has been chatting with disappears from the group (ΠC).

The example runs a random-waypoint MANET at pedestrian speed with a
``periodic_beacon`` chat workload attached, then reports (a) the ledger's
delivery accounting — goodput, delivery ratio, latency, cross-group leakage —
and (b) the continuity summary measured by the metrics package.

Run with::

    python examples/manet_chat.py

``REPRO_QUICK=1`` shrinks the simulated duration (used by the CI smoke test).
"""

from __future__ import annotations

import os

from repro.experiments.runner import run_with_sampler
from repro.metrics.continuity import continuity_summary
from repro.scenarios import ScenarioSpec, build
from repro.traffic import TrafficSpec, attach_traffic

QUICK = os.environ.get("REPRO_QUICK", "") == "1"


def main() -> None:
    duration = 50.0 if QUICK else 150.0
    deployment = build(ScenarioSpec.create(
        "manet_waypoint", n=16, area=350.0, radio_range=130.0, dmax=3, speed=1.5),
        seed=11)
    # Chat = one group-scoped message every 5 seconds per node.
    driver = attach_traffic(deployment,
                            TrafficSpec.create("periodic_beacon", interval=5.0,
                                               size=120),
                            seed=11)

    sampler = run_with_sampler(deployment, duration=duration, sample_interval=1.0)

    summary = continuity_summary(sampler.transitions)
    totals = driver.ledger.totals(duration)

    print("MANET chat scenario — 16 nodes, random waypoint at 1.5 m/s, Dmax = 3\n")
    print(f"chat messages sent ................ {driver.ledger.messages_sent}")
    print(f"in-group deliveries ............... {totals['delivered']}")
    print(f"delivery ratio .................... {totals['delivery_ratio']}")
    print(f"goodput (messages/s) .............. {totals['goodput_msgs_per_s']}")
    print(f"cross-group leakage ratio ......... {totals['leakage_ratio']}")
    print(f"sampled transitions ............... {summary.transitions}")
    print(f"transitions where ΠT held ......... {summary.topological_held}")
    print(f"continuity violations (total) ..... {summary.violations_total}")
    print(f"violations while ΠT held .......... {summary.violations_under_topological}")
    print(f"best-effort property respected .... {summary.best_effort_respected}")
    print("\nWith slow mobility the diameter constraint is preserved, so the chat "
          "application never loses a partner it was talking to — even though the "
          "protocol keeps converging in the background.  The ledger shows the "
          "best-effort gap directly: single broadcasts only reach 1-hop members, "
          "so the delivery ratio over a Dmax=3 group stays below one.")


if __name__ == "__main__":
    main()
