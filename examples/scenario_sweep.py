#!/usr/bin/env python
"""Scenario-layer tour: registry catalog, declarative specs, workload sweeps.

The declarative scenario layer (:mod:`repro.scenarios`) turns workloads into
data: a :class:`~repro.scenarios.ScenarioSpec` names a registered scenario
plus the parameters that differ from its defaults, and ``build(spec, seed)``
returns a ready-to-run deployment.  Because specs are plain values, the
campaign orchestrator can use them as grid axes: this example sweeps the node
count of the random-waypoint MANET and reruns the fault-recovery experiment
(E6) on every cell, aggregated across seeds.

Run with::

    python examples/scenario_sweep.py

``REPRO_QUICK=1`` shrinks the grid (used by the CI smoke test).  The same
sweep is available straight from the command line::

    python -m repro.experiments.cli E6 --scenario manet_waypoint \
        --sweep n=10,16 --seeds 2 --store sweep.jsonl
"""

from __future__ import annotations

import os

from repro.campaign import CampaignSpec, campaign_report, run_campaign
from repro.scenarios import ScenarioSpec, build, get_scenario, scenario_names

QUICK = os.environ.get("REPRO_QUICK", "") == "1"


def main() -> None:
    print(f"registered scenarios ({len(scenario_names())}): "
          f"{', '.join(scenario_names())}\n")

    # A spec is data: hashable, comparable, JSON-roundtrippable.
    spec = ScenarioSpec.create("manet_waypoint", n=12, speed=4.0)
    definition = get_scenario(spec.name)
    print(f"spec ............ {spec.label()}")
    print(f"description ..... {definition.description}")
    print(f"defaults filled . {definition.resolve_params(spec.param_dict)}")

    deployment = build(spec, seed=7)
    deployment.run(20.0)
    report = deployment.views()
    print(f"after 20 s ...... {len(set(map(frozenset, report.values())))} distinct views "
          f"over {len(report)} nodes\n")

    # The same specs become campaign grid axes: one cell per node count.
    sizes = (8, 12) if QUICK else (8, 12, 16)
    campaign = CampaignSpec(
        name="scenario-sweep-demo",
        experiments=("E6",),
        replicates=2,
        scenarios=tuple(ScenarioSpec.create("manet_waypoint", n=n) for n in sizes),
    )
    print(f"campaign: {len(campaign.expand())} tasks "
          f"({len(campaign.scenarios)} scenario cells x {campaign.replicates} seeds)\n")
    result = run_campaign(campaign, jobs=1)
    print(campaign_report(result))


if __name__ == "__main__":
    main()
