#!/usr/bin/env python
"""Traffic sweep: application workloads as a measurement axis.

Runs the same mobile scenario under every registered traffic pattern
(``--list-traffic`` in the CLI shows the catalog) and prints one
delivery-ledger row per workload: goodput, delivery ratio, end-to-end
latency, staleness and cross-group leakage.  This is the one-file version of
what the campaign layer does at scale with ``CampaignSpec.traffics`` /
``--traffic-sweep`` — same specs, same ledger, same columns.

Run with::

    python examples/traffic_sweep.py

``REPRO_QUICK=1`` shrinks the simulated duration (used by the CI smoke test).
"""

from __future__ import annotations

import os

from repro.metrics.report import print_table
from repro.scenarios import ScenarioSpec, build
from repro.traffic import TrafficSpec, attach_traffic, traffic_names

QUICK = os.environ.get("REPRO_QUICK", "") == "1"


def main() -> None:
    duration = 30.0 if QUICK else 120.0
    rows = []
    for name in traffic_names():
        deployment = build(ScenarioSpec.create(
            "manet_waypoint", n=14, area=300.0, radio_range=120.0, dmax=3, speed=3.0),
            seed=21)
        driver = attach_traffic(deployment, TrafficSpec.create(name), seed=21)
        deployment.run(duration)
        totals = driver.ledger.totals(duration)
        row = {"traffic": name,
               "offered": totals["offered"],
               "delivered": totals["delivered"],
               "delivery_ratio": totals["delivery_ratio"],
               "goodput_msgs_per_s": totals["goodput_msgs_per_s"],
               "latency_mean": totals["latency_mean"],
               "staleness_mean": totals["staleness_mean"],
               "leakage_ratio": totals["leakage_ratio"]}
        if "rtt_mean" in totals:
            row["rtt_mean"] = totals["rtt_mean"]
        rows.append(row)
    print_table(rows, title=f"traffic patterns over manet_waypoint "
                            f"(14 nodes, 3 m/s, {duration:.0f}s)")
    print("\nEvery workload is seeded and spec-driven: the same TrafficSpec values "
          "drive campaign grids (CampaignSpec.traffics, CLI --traffic-sweep), "
          "where each cell gets its own derived seed stream and report block.")


if __name__ == "__main__":
    main()
